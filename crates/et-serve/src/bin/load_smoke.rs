//! The `load_smoke` binary: an in-process server driven by N concurrent
//! wire clients, each running one session to completion across the paper's
//! strategy set. Exits non-zero unless every session finishes its full
//! iteration budget with a falling MAE curve.
//!
//! ```text
//! load_smoke [--sessions N] [--iterations N] [--rows N] [--seed N]
//! ```

use std::process::ExitCode;

use et_core::StrategyKind;
use et_serve::{spawn, Client, CreateSessionSpec, ServerConfig};

struct Options {
    sessions: usize,
    iterations: usize,
    rows: usize,
    seed: u64,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            sessions: 6,
            iterations: 8,
            rows: 120,
            seed: 2026,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        let parsed: u64 = value
            .parse()
            .map_err(|_| format!("{flag} must be a number, got {value:?}"))?;
        match flag {
            "--sessions" => opts.sessions = parsed as usize,
            "--iterations" => opts.iterations = parsed as usize,
            "--rows" => opts.rows = parsed as usize,
            "--seed" => opts.seed = parsed,
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    if opts.sessions == 0 {
        return Err("--sessions must be positive".to_string());
    }
    Ok(opts)
}

fn drive_one(addr: &str, spec: CreateSessionSpec) -> Result<(usize, f64, f64), String> {
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let (session, seed) = client.create_session(&spec).map_err(|e| e.to_string())?;
    let outcome = client
        .drive_auto(session, seed)
        .map_err(|e| e.to_string())?;
    client.close_session(session).map_err(|e| e.to_string())?;
    let first = outcome
        .mae_series
        .first()
        .copied()
        .ok_or_else(|| "empty MAE series".to_string())?;
    Ok((outcome.iterations_run, first, outcome.final_mae))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("load_smoke: {msg}");
            eprintln!("usage: load_smoke [--sessions N] [--iterations N] [--rows N] [--seed N]");
            return ExitCode::FAILURE;
        }
    };

    // One worker per client: every connection stays open for its whole
    // session.
    let mut cfg = ServerConfig {
        workers: opts.sessions,
        ..ServerConfig::default()
    };
    cfg.store.capacity = opts.sessions;
    cfg.store.base_seed = opts.seed;
    let handle = match spawn(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("load_smoke: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr().to_string();
    println!(
        "driving {} concurrent sessions ({} iterations each) against {addr}",
        opts.sessions, opts.iterations
    );

    let strategies = StrategyKind::PAPER_METHODS;
    let mut joins = Vec::with_capacity(opts.sessions);
    for i in 0..opts.sessions {
        let addr = addr.clone();
        let spec = CreateSessionSpec {
            strategy: strategies[i % strategies.len()],
            rows: opts.rows,
            iterations: opts.iterations,
            seed: Some(opts.seed.wrapping_add(i as u64)),
            ..CreateSessionSpec::default()
        };
        joins.push(std::thread::spawn(move || drive_one(&addr, spec)));
    }

    let mut failures = 0usize;
    for (i, join) in joins.into_iter().enumerate() {
        match join.join() {
            Ok(Ok((iterations_run, first, last))) => {
                let ok = iterations_run == opts.iterations && last < first;
                println!(
                    "session {i}: {iterations_run} iterations, MAE {first:.4} -> {last:.4} {}",
                    if ok { "ok" } else { "FAIL" }
                );
                if !ok {
                    failures += 1;
                }
            }
            Ok(Err(msg)) => {
                println!("session {i}: FAIL ({msg})");
                failures += 1;
            }
            Err(_) => {
                println!("session {i}: FAIL (client thread panicked)");
                failures += 1;
            }
        }
    }

    if let Ok(mut c) = Client::connect(&addr) {
        let _ = c.shutdown_server();
    }
    handle.wait();

    if failures > 0 {
        eprintln!(
            "load_smoke: {failures} of {} sessions failed",
            opts.sessions
        );
        return ExitCode::FAILURE;
    }
    println!("all {} sessions converged", opts.sessions);
    ExitCode::SUCCESS
}
