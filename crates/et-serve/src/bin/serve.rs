//! The `serve` binary: bind the session service and run until a wire
//! `shutdown` request (or a fatal bind error).
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--capacity N]
//!       [--idle-timeout-secs N] [--seed N]
//!       [--data-dir PATH] [--fsync always|never] [--snapshot-every N]
//!       [--blocking] [--shards N] [--conn-idle-timeout-secs N]
//!       [--max-line-bytes N]
//! ```
//!
//! With `--data-dir`, sessions are journaled (write-ahead label log plus
//! periodic snapshots) and recovered on start; without it the store is
//! purely in-memory, exactly as before.
//!
//! The transport defaults to the readiness-based event loop; `--blocking`
//! selects the portable thread-per-connection path.
//! `--conn-idle-timeout-secs` bounds how long a connection may go without
//! completing a request line (slow-loris defense; 0 disables it).

use std::process::ExitCode;
use std::time::Duration;

use et_durable::FsyncPolicy;
use et_serve::{spawn, ServeMode, ServerConfig};

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--blocking" {
            cfg.mode = ServeMode::Blocking;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--addr" => cfg.addr = value.clone(),
            "--workers" => {
                cfg.workers = value
                    .parse()
                    .map_err(|_| format!("--workers must be a number, got {value:?}"))?;
            }
            "--capacity" => {
                cfg.store.capacity = value
                    .parse()
                    .map_err(|_| format!("--capacity must be a number, got {value:?}"))?;
            }
            "--idle-timeout-secs" => {
                let secs: u64 = value
                    .parse()
                    .map_err(|_| format!("--idle-timeout-secs must be a number, got {value:?}"))?;
                cfg.store.idle_timeout = Duration::from_secs(secs);
            }
            "--seed" => {
                cfg.store.base_seed = value
                    .parse()
                    .map_err(|_| format!("--seed must be a number, got {value:?}"))?;
            }
            "--data-dir" => {
                cfg.store.data_dir = Some(std::path::PathBuf::from(value));
            }
            "--fsync" => {
                cfg.store.journal.fsync =
                    FsyncPolicy::from_name(value).map_err(|e| format!("--fsync: {e}"))?;
            }
            "--snapshot-every" => {
                cfg.store.journal.snapshot_every = value
                    .parse()
                    .map_err(|_| format!("--snapshot-every must be a number, got {value:?}"))?;
            }
            "--shards" => {
                cfg.shards = value
                    .parse()
                    .map_err(|_| format!("--shards must be a number, got {value:?}"))?;
            }
            "--conn-idle-timeout-secs" => {
                let secs: u64 = value.parse().map_err(|_| {
                    format!("--conn-idle-timeout-secs must be a number, got {value:?}")
                })?;
                cfg.conn_idle_timeout = Duration::from_secs(secs);
            }
            "--max-line-bytes" => {
                cfg.max_line_bytes = value
                    .parse()
                    .map_err(|_| format!("--max-line-bytes must be a number, got {value:?}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("serve: {msg}");
            eprintln!(
                "usage: serve [--addr HOST:PORT] [--workers N] [--capacity N] \
                 [--idle-timeout-secs N] [--seed N] \
                 [--data-dir PATH] [--fsync always|never] [--snapshot-every N] \
                 [--blocking] [--shards N] [--conn-idle-timeout-secs N] \
                 [--max-line-bytes N]"
            );
            return ExitCode::FAILURE;
        }
    };
    let durable = cfg.store.data_dir.is_some();
    let handle = match spawn(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if durable {
        let report = handle.recovery_report();
        println!(
            "recovered {} sessions ({} failed, {} skipped at capacity)",
            report.recovered,
            report.failed.len(),
            report.skipped_capacity
        );
        for (dir, reason) in &report.failed {
            eprintln!("serve: recovery of {} failed: {reason}", dir.display());
        }
    }
    println!("listening on {}", handle.addr());
    // Runs until a client sends {"op":"shutdown"}.
    handle.wait();
    println!("shut down cleanly");
    ExitCode::SUCCESS
}
