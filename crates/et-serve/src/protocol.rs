//! The wire protocol: newline-delimited JSON, one request and one response
//! per line.
//!
//! Grammar (every line is one compact JSON object):
//!
//! ```text
//! request  := {"op": OP, ...op-specific members}
//! OP       := "create_session" | "next_pairs" | "submit_labels"
//!           | "status" | "close_session" | "shutdown"
//! response := {"ok": true, "reply": KIND, ...} | {"ok": false, "error": CODE, "message": STR}
//! CODE     := "parse_error" | "bad_request" | "unknown_session" | "server_busy"
//!           | "wrong_phase" | "invalid_config" | "shutting_down" | "internal"
//!           | "protocol_error"
//! ```
//!
//! See DESIGN.md §9 for the full per-op member tables and the session
//! state machine.

use et_core::{IterationMetrics, StrategyKind};
use et_data::gen::DatasetName;

use crate::json::Json;
use crate::spec::CreateSessionSpec;

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Create a session; missing members take paper-shaped defaults.
    Create(CreateSessionSpec),
    /// Ask the learner for the next presentation of `session`.
    NextPairs {
        /// Target session id.
        session: u64,
    },
    /// Label the pending presentation. `labels: None` delegates to the
    /// hosted simulated annotator (batch-identical); `Some` supplies the
    /// caller's own per-tuple verdicts.
    SubmitLabels {
        /// Target session id.
        session: u64,
        /// One `dirty?` verdict per presented tuple, or `None` to let the
        /// hosted trainer label.
        labels: Option<Vec<bool>>,
    },
    /// Metrics snapshot: one session (`Some`) or the whole server (`None`).
    Status {
        /// Target session id, when asking about one session.
        session: Option<u64>,
    },
    /// Drop a session.
    Close {
        /// Target session id.
        session: u64,
    },
    /// Ask the server to shut down gracefully.
    Shutdown,
}

/// Typed error codes carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    ParseError,
    /// The request was JSON but not a valid request.
    BadRequest,
    /// The session id names no live session.
    UnknownSession,
    /// The session store is at capacity.
    ServerBusy,
    /// The step was called out of phase (e.g. labels without a pending
    /// presentation).
    WrongPhase,
    /// The create spec or session config was rejected.
    InvalidConfig,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
    /// A server-side failure (e.g. durable storage refused a write). The
    /// session is untouched; the request may be retried.
    Internal,
    /// The byte stream violated the framing contract (e.g. a request line
    /// over the configured maximum length). The server closes the
    /// connection after this reply.
    ProtocolError,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse_error",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::ServerBusy => "server_busy",
            ErrorCode::WrongPhase => "wrong_phase",
            ErrorCode::InvalidConfig => "invalid_config",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
            ErrorCode::ProtocolError => "protocol_error",
        }
    }

    /// Parses the wire spelling.
    pub fn from_name(name: &str) -> Option<ErrorCode> {
        [
            ErrorCode::ParseError,
            ErrorCode::BadRequest,
            ErrorCode::UnknownSession,
            ErrorCode::ServerBusy,
            ErrorCode::WrongPhase,
            ErrorCode::InvalidConfig,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
            ErrorCode::ProtocolError,
        ]
        .into_iter()
        .find(|c| c.as_str() == name)
    }
}

/// One presented pair, by global row id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePair {
    /// First row.
    pub a: usize,
    /// Second row.
    pub b: usize,
}

/// A server reply.
#[derive(Debug, Clone)]
pub enum Response {
    /// Session created.
    Created {
        /// The new session id.
        session: u64,
        /// Rows in the generated table.
        rows: usize,
        /// Hypotheses in the FD space.
        fds: usize,
        /// Iteration budget.
        iterations: usize,
        /// The seed the session runs under (echoed so callers can
        /// reproduce the run in batch).
        seed: u64,
    },
    /// The next presentation: pairs to label.
    Pairs {
        /// Session id.
        session: u64,
        /// Iteration number (0-based).
        t: usize,
        /// Selected pairs (global row ids).
        pairs: Vec<WirePair>,
        /// Distinct presented rows, in order; labels align with this.
        sample: Vec<usize>,
        /// Rendered row texts, aligned with `sample`.
        tuples: Vec<String>,
    },
    /// The session has no further presentations.
    Done {
        /// Session id.
        session: u64,
        /// Interactions executed.
        iterations_run: usize,
        /// First stable iteration, when convergence was reached.
        converged_at: Option<usize>,
        /// Final trainer/learner MAE.
        final_mae: f64,
    },
    /// Labels absorbed; the iteration's metrics.
    Labeled {
        /// Session id.
        session: u64,
        /// The labels that were applied.
        labels: Vec<bool>,
        /// The full per-iteration metrics row.
        metrics: IterationMetrics,
    },
    /// Snapshot of one session.
    SessionStatus {
        /// Session id.
        session: u64,
        /// Interactions executed so far.
        iterations_done: usize,
        /// Iteration budget.
        iterations: usize,
        /// Whether a presentation awaits labels.
        awaiting_labels: bool,
        /// MAE curve so far.
        mae_series: Vec<f64>,
        /// Convergence point so far, if any.
        converged_at: Option<usize>,
        /// The learner's current per-FD confidences. f64 encoding is
        /// shortest-round-trip, so these compare *bit-exactly* across the
        /// wire — the crash-recovery harness leans on that.
        learner_confidences: Vec<f64>,
        /// The hosted trainer's current per-FD confidences.
        trainer_confidences: Vec<f64>,
    },
    /// Snapshot of the whole server.
    ServerStatus {
        /// Live sessions.
        live_sessions: usize,
        /// Capacity bound.
        capacity: usize,
        /// Sessions created since start.
        created_total: u64,
        /// Sessions evicted for idleness since start.
        evicted_total: u64,
        /// Sessions refused at capacity since start.
        busy_rejections: u64,
        /// Rounds timed by the server-side latency histogram.
        round_latency_samples: u64,
        /// Estimated p50 of `submit_labels` handling (hosted labeling +
        /// learner update + WAL append), ms; 0 before any sample.
        round_latency_p50_ms: f64,
        /// Estimated p99 of the same, ms; 0 before any sample.
        round_latency_p99_ms: f64,
    },
    /// Session dropped.
    Closed {
        /// Session id.
        session: u64,
    },
    /// Shutdown acknowledged; the listener is draining.
    ShuttingDown,
    /// Typed failure.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    /// `(code, message)` mirroring the wire error reply: `ParseError` for
    /// invalid JSON, `BadRequest` for valid JSON that is not a request.
    pub fn parse_line(line: &str) -> Result<Request, (ErrorCode, String)> {
        let v = Json::parse(line).map_err(|e| (ErrorCode::ParseError, e.to_string()))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| (ErrorCode::BadRequest, "missing \"op\" member".to_string()))?;
        match op {
            "create_session" => Ok(Request::Create(parse_create(&v)?)),
            "next_pairs" => Ok(Request::NextPairs {
                session: required_session(&v)?,
            }),
            "submit_labels" => {
                let labels = match v.get("labels") {
                    None | Some(Json::Null) => None,
                    Some(Json::Arr(items)) => {
                        let mut out = Vec::with_capacity(items.len());
                        for item in items {
                            out.push(item.as_bool().ok_or_else(|| {
                                (
                                    ErrorCode::BadRequest,
                                    "\"labels\" must be an array of booleans".to_string(),
                                )
                            })?);
                        }
                        Some(out)
                    }
                    Some(_) => {
                        return Err((
                            ErrorCode::BadRequest,
                            "\"labels\" must be an array of booleans".to_string(),
                        ))
                    }
                };
                Ok(Request::SubmitLabels {
                    session: required_session(&v)?,
                    labels,
                })
            }
            "status" => Ok(Request::Status {
                session: optional_u64(&v, "session")?,
            }),
            "close_session" => Ok(Request::Close {
                session: required_session(&v)?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err((ErrorCode::BadRequest, format!("unknown op {other:?}"))),
        }
    }

    /// Encodes the request as one wire line (no trailing newline).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Create(spec) => {
                let mut members = vec![
                    ("op", Json::str("create_session")),
                    ("dataset", Json::str(spec.dataset.as_str())),
                    ("rows", Json::Num(spec.rows as f64)),
                    ("degree", Json::Num(spec.degree)),
                    ("strategy", Json::str(spec.strategy.as_str())),
                    ("iterations", Json::Num(spec.iterations as f64)),
                    (
                        "pairs_per_iteration",
                        Json::Num(spec.pairs_per_iteration as f64),
                    ),
                    ("test_frac", Json::Num(spec.test_frac)),
                ];
                if let Some(seed) = spec.seed {
                    members.push(("seed", Json::Num(seed as f64)));
                }
                Json::obj(members)
            }
            Request::NextPairs { session } => Json::obj(vec![
                ("op", Json::str("next_pairs")),
                ("session", Json::Num(*session as f64)),
            ]),
            Request::SubmitLabels { session, labels } => {
                let mut members = vec![
                    ("op", Json::str("submit_labels")),
                    ("session", Json::Num(*session as f64)),
                ];
                if let Some(labels) = labels {
                    members.push((
                        "labels",
                        Json::Arr(labels.iter().map(|&b| Json::Bool(b)).collect()),
                    ));
                }
                Json::obj(members)
            }
            Request::Status { session } => {
                let mut members = vec![("op", Json::str("status"))];
                if let Some(s) = session {
                    members.push(("session", Json::Num(*s as f64)));
                }
                Json::obj(members)
            }
            Request::Close { session } => Json::obj(vec![
                ("op", Json::str("close_session")),
                ("session", Json::Num(*session as f64)),
            ]),
            Request::Shutdown => Json::obj(vec![("op", Json::str("shutdown"))]),
        }
    }
}

fn required_session(v: &Json) -> Result<u64, (ErrorCode, String)> {
    optional_u64(v, "session")?.ok_or_else(|| {
        (
            ErrorCode::BadRequest,
            "missing \"session\" member".to_string(),
        )
    })
}

fn optional_u64(v: &Json, key: &str) -> Result<Option<u64>, (ErrorCode, String)> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(member) => member.as_u64().map(Some).ok_or_else(|| {
            (
                ErrorCode::BadRequest,
                format!("{key:?} must be a non-negative integer"),
            )
        }),
    }
}

fn optional_usize(v: &Json, key: &str) -> Result<Option<usize>, (ErrorCode, String)> {
    Ok(optional_u64(v, key)?.map(|n| n as usize))
}

fn optional_f64(v: &Json, key: &str) -> Result<Option<f64>, (ErrorCode, String)> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(member) => member
            .as_f64()
            .map(Some)
            .ok_or_else(|| (ErrorCode::BadRequest, format!("{key:?} must be a number"))),
    }
}

fn parse_create(v: &Json) -> Result<CreateSessionSpec, (ErrorCode, String)> {
    let mut spec = CreateSessionSpec::default();
    if let Some(name) = v.get("dataset") {
        let name = name.as_str().ok_or_else(|| {
            (
                ErrorCode::BadRequest,
                "\"dataset\" must be a string".to_string(),
            )
        })?;
        spec.dataset = DatasetName::ALL
            .into_iter()
            .find(|d| d.as_str().eq_ignore_ascii_case(name))
            .ok_or_else(|| (ErrorCode::BadRequest, format!("unknown dataset {name:?}")))?;
    }
    if let Some(name) = v.get("strategy") {
        let name = name.as_str().ok_or_else(|| {
            (
                ErrorCode::BadRequest,
                "\"strategy\" must be a string".to_string(),
            )
        })?;
        spec.strategy = StrategyKind::from_name(name)
            .ok_or_else(|| (ErrorCode::BadRequest, format!("unknown strategy {name:?}")))?;
    }
    if let Some(rows) = optional_usize(v, "rows")? {
        spec.rows = rows;
    }
    if let Some(degree) = optional_f64(v, "degree")? {
        spec.degree = degree;
    }
    if let Some(iterations) = optional_usize(v, "iterations")? {
        spec.iterations = iterations;
    }
    if let Some(pairs) = optional_usize(v, "pairs_per_iteration")? {
        spec.pairs_per_iteration = pairs;
    }
    if let Some(test_frac) = optional_f64(v, "test_frac")? {
        spec.test_frac = test_frac;
    }
    spec.seed = optional_u64(v, "seed")?;
    Ok(spec)
}

fn metrics_to_json(m: &IterationMetrics) -> Json {
    Json::obj(vec![
        ("t", Json::Num(m.t as f64)),
        ("mae", Json::Num(m.mae)),
        ("learner_f1", Json::Num(m.learner_f1)),
        ("learner_precision", Json::Num(m.learner_precision)),
        ("learner_recall", Json::Num(m.learner_recall)),
        ("trainer_f1", Json::Num(m.trainer_f1)),
        ("learner_drift", Json::Num(m.learner_drift)),
        ("trainer_drift", Json::Num(m.trainer_drift)),
        ("policy_entropy", Json::Num(m.policy_entropy)),
        ("dirty_labels", Json::Num(m.dirty_labels as f64)),
        ("phi_dirty", Json::Num(m.phi_dirty)),
        ("agreement", Json::Num(m.agreement)),
    ])
}

fn opt_num(v: Option<usize>) -> Json {
    match v {
        Some(n) => Json::Num(n as f64),
        None => Json::Null,
    }
}

impl Response {
    /// Encodes the response as one wire line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().encode()
    }

    fn to_json(&self) -> Json {
        match self {
            Response::Created {
                session,
                rows,
                fds,
                iterations,
                seed,
            } => ok_reply(
                "created",
                vec![
                    ("session", Json::Num(*session as f64)),
                    ("rows", Json::Num(*rows as f64)),
                    ("fds", Json::Num(*fds as f64)),
                    ("iterations", Json::Num(*iterations as f64)),
                    ("seed", Json::Num(*seed as f64)),
                ],
            ),
            Response::Pairs {
                session,
                t,
                pairs,
                sample,
                tuples,
            } => ok_reply(
                "pairs",
                vec![
                    ("session", Json::Num(*session as f64)),
                    ("t", Json::Num(*t as f64)),
                    (
                        "pairs",
                        Json::Arr(
                            pairs
                                .iter()
                                .map(|p| {
                                    Json::Arr(vec![Json::Num(p.a as f64), Json::Num(p.b as f64)])
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "sample",
                        Json::Arr(sample.iter().map(|&r| Json::Num(r as f64)).collect()),
                    ),
                    (
                        "tuples",
                        Json::Arr(tuples.iter().map(|t| Json::str(t)).collect()),
                    ),
                ],
            ),
            Response::Done {
                session,
                iterations_run,
                converged_at,
                final_mae,
            } => ok_reply(
                "done",
                vec![
                    ("session", Json::Num(*session as f64)),
                    ("iterations_run", Json::Num(*iterations_run as f64)),
                    ("converged_at", opt_num(*converged_at)),
                    ("final_mae", Json::Num(*final_mae)),
                ],
            ),
            Response::Labeled {
                session,
                labels,
                metrics,
            } => ok_reply(
                "labeled",
                vec![
                    ("session", Json::Num(*session as f64)),
                    (
                        "labels",
                        Json::Arr(labels.iter().map(|&b| Json::Bool(b)).collect()),
                    ),
                    ("metrics", metrics_to_json(metrics)),
                ],
            ),
            Response::SessionStatus {
                session,
                iterations_done,
                iterations,
                awaiting_labels,
                mae_series,
                converged_at,
                learner_confidences,
                trainer_confidences,
            } => ok_reply(
                "session_status",
                vec![
                    ("session", Json::Num(*session as f64)),
                    ("iterations_done", Json::Num(*iterations_done as f64)),
                    ("iterations", Json::Num(*iterations as f64)),
                    ("awaiting_labels", Json::Bool(*awaiting_labels)),
                    (
                        "mae_series",
                        Json::Arr(mae_series.iter().map(|&m| Json::Num(m)).collect()),
                    ),
                    ("converged_at", opt_num(*converged_at)),
                    (
                        "learner_confidences",
                        Json::Arr(learner_confidences.iter().map(|&c| Json::Num(c)).collect()),
                    ),
                    (
                        "trainer_confidences",
                        Json::Arr(trainer_confidences.iter().map(|&c| Json::Num(c)).collect()),
                    ),
                ],
            ),
            Response::ServerStatus {
                live_sessions,
                capacity,
                created_total,
                evicted_total,
                busy_rejections,
                round_latency_samples,
                round_latency_p50_ms,
                round_latency_p99_ms,
            } => ok_reply(
                "server_status",
                vec![
                    ("live_sessions", Json::Num(*live_sessions as f64)),
                    ("capacity", Json::Num(*capacity as f64)),
                    ("created_total", Json::Num(*created_total as f64)),
                    ("evicted_total", Json::Num(*evicted_total as f64)),
                    ("busy_rejections", Json::Num(*busy_rejections as f64)),
                    (
                        "round_latency_samples",
                        Json::Num(*round_latency_samples as f64),
                    ),
                    ("round_latency_p50_ms", Json::Num(*round_latency_p50_ms)),
                    ("round_latency_p99_ms", Json::Num(*round_latency_p99_ms)),
                ],
            ),
            Response::Closed { session } => {
                ok_reply("closed", vec![("session", Json::Num(*session as f64))])
            }
            Response::ShuttingDown => ok_reply("shutting_down", vec![]),
            Response::Error { code, message } => Json::obj(vec![
                ("ok", Json::Bool(false)),
                ("error", Json::str(code.as_str())),
                ("message", Json::str(message)),
            ]),
        }
    }
}

fn ok_reply(kind: &str, rest: Vec<(&str, Json)>) -> Json {
    let mut members = vec![("ok", Json::Bool(true)), ("reply", Json::str(kind))];
    members.extend(rest);
    Json::obj(members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_round_trips_through_parse() {
        let spec = CreateSessionSpec {
            dataset: DatasetName::Hospital,
            rows: 120,
            degree: 0.2,
            strategy: StrategyKind::UncertaintySampling,
            iterations: 12,
            pairs_per_iteration: 4,
            test_frac: 0.25,
            seed: Some(99),
        };
        let line = Request::Create(spec.clone()).to_json().encode();
        let Ok(Request::Create(parsed)) = Request::parse_line(&line) else {
            panic!("create should re-parse: {line}");
        };
        assert_eq!(parsed.dataset.as_str(), spec.dataset.as_str());
        assert_eq!(parsed.rows, spec.rows);
        assert_eq!(parsed.degree, spec.degree);
        assert_eq!(parsed.strategy, spec.strategy);
        assert_eq!(parsed.iterations, spec.iterations);
        assert_eq!(parsed.pairs_per_iteration, spec.pairs_per_iteration);
        assert_eq!(parsed.test_frac, spec.test_frac);
        assert_eq!(parsed.seed, spec.seed);
    }

    #[test]
    fn empty_create_takes_defaults() {
        let Ok(Request::Create(spec)) = Request::parse_line("{\"op\":\"create_session\"}") else {
            panic!("bare create should parse");
        };
        assert_eq!(spec.rows, CreateSessionSpec::default().rows);
        assert_eq!(spec.seed, None);
    }

    #[test]
    fn bad_requests_get_typed_codes() {
        let cases = [
            ("not json", ErrorCode::ParseError),
            ("{}", ErrorCode::BadRequest),
            ("{\"op\":\"fly\"}", ErrorCode::BadRequest),
            ("{\"op\":\"next_pairs\"}", ErrorCode::BadRequest),
            (
                "{\"op\":\"next_pairs\",\"session\":-1}",
                ErrorCode::BadRequest,
            ),
            (
                "{\"op\":\"submit_labels\",\"session\":1,\"labels\":[1]}",
                ErrorCode::BadRequest,
            ),
            (
                "{\"op\":\"create_session\",\"dataset\":\"Mars\"}",
                ErrorCode::BadRequest,
            ),
        ];
        for (line, want) in cases {
            match Request::parse_line(line) {
                Err((code, _)) => assert_eq!(code, want, "{line}"),
                Ok(r) => panic!("{line} should fail, got {r:?}"),
            }
        }
    }

    #[test]
    fn submit_labels_distinguishes_hosted_from_explicit() {
        let Ok(Request::SubmitLabels { labels: None, .. }) =
            Request::parse_line("{\"op\":\"submit_labels\",\"session\":3}")
        else {
            panic!("hosted submit should parse");
        };
        let Ok(Request::SubmitLabels {
            labels: Some(ls), ..
        }) =
            Request::parse_line("{\"op\":\"submit_labels\",\"session\":3,\"labels\":[true,false]}")
        else {
            panic!("explicit submit should parse");
        };
        assert_eq!(ls, vec![true, false]);
    }

    #[test]
    fn responses_encode_as_single_lines() {
        let responses = [
            Response::Created {
                session: 1,
                rows: 100,
                fds: 12,
                iterations: 30,
                seed: 42,
            },
            Response::Done {
                session: 1,
                iterations_run: 30,
                converged_at: None,
                final_mae: 0.03125,
            },
            Response::ShuttingDown,
            Response::Error {
                code: ErrorCode::ServerBusy,
                message: "at capacity".to_string(),
            },
        ];
        for r in responses {
            let line = r.encode();
            assert!(!line.contains('\n'), "{line}");
            assert!(crate::json::Json::parse(&line).is_ok(), "{line}");
        }
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::ParseError,
            ErrorCode::BadRequest,
            ErrorCode::UnknownSession,
            ErrorCode::ServerBusy,
            ErrorCode::WrongPhase,
            ErrorCode::InvalidConfig,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
            ErrorCode::ProtocolError,
        ] {
            assert_eq!(ErrorCode::from_name(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_name("nope"), None);
    }
}
