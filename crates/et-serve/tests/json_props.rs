//! Property tests for the hand-rolled JSON module: arbitrary values
//! round-trip through encode → parse unchanged, and malformed or truncated
//! input always yields a typed error, never a panic.

use et_serve::Json;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds an arbitrary JSON value from a seeded stream. Depth-bounded so
/// generated values stay well inside the parser's nesting cap.
fn arb_json(rng: &mut StdRng, depth: usize) -> Json {
    let kinds = if depth == 0 { 4 } else { 6 };
    match rng.gen_range(0..kinds) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => {
            // Mix of integers, fractions, and extreme magnitudes.
            let n: f64 = match rng.gen_range(0..4) {
                0 => rng.gen_range(-1_000_000i64..1_000_000) as f64,
                1 => rng.gen_range(-1.0e3..1.0e3),
                2 => rng.gen_range(-1.0..1.0) * 1.0e300,
                _ => rng.gen_range(0.0..1.0) * 1.0e-300,
            };
            Json::Num(n)
        }
        3 => Json::Str(arb_string(rng)),
        4 => {
            let len = rng.gen_range(0..4usize);
            Json::Arr((0..len).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0..4usize);
            Json::Obj(
                (0..len)
                    .map(|i| {
                        (
                            format!("k{i}_{}", arb_string(rng)),
                            arb_json(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

fn arb_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..12usize);
    (0..len)
        .map(|_| {
            // Bias toward characters that exercise escaping.
            match rng.gen_range(0..6) {
                0 => '"',
                1 => '\\',
                2 => '\n',
                3 => char::from_u32(rng.gen_range(0u32..0x20)).unwrap_or('\u{1f}'),
                4 => char::from_u32(rng.gen_range(0x1F600u32..0x1F640)).unwrap_or('😀'),
                _ => char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap_or('x'),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode(v) parses back to exactly v — including f64 bits.
    #[test]
    fn encoded_values_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = arb_json(&mut rng, 3);
        let encoded = v.encode();
        let parsed = match Json::parse(&encoded) {
            Ok(p) => p,
            Err(e) => return Err(proptest::TestCaseError::fail(format!(
                "round-trip parse failed: {e} on {encoded}"
            ))),
        };
        prop_assert_eq!(&parsed, &v, "{}", encoded);
    }

    /// Arbitrary ASCII garbage never panics the parser.
    #[test]
    fn malformed_ascii_never_panics(bytes in proptest::collection::vec(0x20u8..0x7F, 0..64)) {
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = Json::parse(&text); // any Result is fine; panics fail the test
    }

    /// Every strict prefix of a valid encoding is either an error or (for
    /// the rare self-delimiting prefix) parses without panicking.
    #[test]
    fn truncations_never_panic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let encoded = arb_json(&mut rng, 3).encode();
        for cut in 0..encoded.len() {
            if encoded.is_char_boundary(cut) {
                let _ = Json::parse(&encoded[..cut]);
            }
        }
    }

    /// Numbers survive the wire with their exact bits (the server's
    /// MAE-equality guarantee rests on this).
    #[test]
    fn numbers_round_trip_bit_exact(bits in any::<u64>()) {
        let n = f64::from_bits(bits);
        prop_assume!(n.is_finite());
        let encoded = Json::Num(n).encode();
        let back = match Json::parse(&encoded) {
            Ok(v) => v.as_f64(),
            Err(e) => return Err(proptest::TestCaseError::fail(format!(
                "parse failed: {e} on {encoded}"
            ))),
        };
        prop_assert_eq!(back.map(f64::to_bits), Some(n.to_bits()), "{}", encoded);
    }
}
