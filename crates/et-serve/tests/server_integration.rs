//! End-to-end tests over a real TCP server on an ephemeral port:
//! concurrent wire-driven sessions reproduce batch `run_session` exactly,
//! the typed error paths fire, and capacity/eviction behave as documented.

// Test helpers run outside `#[test]` fns, where the workspace
// allow-expect-in-tests carve-out does not reach.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::time::Duration;

use et_core::StrategyKind;
use et_serve::{
    run_batch, spawn, Client, ClientError, CreateSessionSpec, ErrorCode, Json, ServerConfig,
    StoreConfig,
};

fn test_server(capacity: usize, idle_timeout: Duration) -> (et_serve::ServerHandle, String) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        store: StoreConfig {
            capacity,
            shards: 4,
            idle_timeout,
            base_seed: 7,
            ..StoreConfig::default()
        },
        ..ServerConfig::default()
    };
    let handle = spawn(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn shut_down(handle: et_serve::ServerHandle, addr: &str) {
    let mut c = Client::connect(addr).expect("connect for shutdown");
    c.shutdown_server().expect("shutdown acknowledged");
    handle.wait();
}

/// Two sessions with different strategies and seeds, driven concurrently
/// over the wire by separate connections; each must match its seed-matched
/// batch run *exactly*, iteration by iteration.
#[test]
fn concurrent_wire_sessions_match_batch_exactly() {
    let (handle, addr) = test_server(8, Duration::from_secs(300));

    let specs = [
        CreateSessionSpec {
            rows: 140,
            iterations: 10,
            strategy: StrategyKind::StochasticBestResponse,
            seed: Some(41),
            ..CreateSessionSpec::default()
        },
        CreateSessionSpec {
            rows: 140,
            iterations: 10,
            strategy: StrategyKind::UncertaintySampling,
            seed: Some(42),
            ..CreateSessionSpec::default()
        },
    ];

    let mut joins = Vec::new();
    for spec in specs {
        let addr = addr.clone();
        joins.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            let (session, seed) = client.create_session(&spec).expect("create");
            assert_eq!(seed, spec.seed.expect("explicit seed"), "seed echoed");
            let outcome = client.drive_auto(session, seed).expect("drive");
            client.close_session(session).expect("close");
            (spec, outcome)
        }));
    }

    for join in joins {
        let (spec, outcome) = join.join().expect("client thread");
        let batch = run_batch(&spec, spec.seed.expect("explicit seed")).expect("batch runs");
        assert_eq!(outcome.iterations_run, batch.metrics.len());
        assert_eq!(
            outcome.mae_series,
            batch.mae_series(),
            "{}: wire MAE curve must equal batch bit-for-bit",
            spec.strategy.as_str()
        );
        assert_eq!(outcome.final_mae, batch.convergence.final_mae);
        assert_eq!(outcome.converged_at, batch.convergence.converged_at);
        assert!(
            outcome.final_mae < outcome.mae_series[0],
            "{}: MAE should fall over the session",
            spec.strategy.as_str()
        );
    }

    shut_down(handle, &addr);
}

/// The typed error paths: busy store, unknown session, out-of-phase steps,
/// bad label cardinality, and create-after-close.
#[test]
fn typed_error_replies() {
    let (handle, addr) = test_server(1, Duration::from_secs(300));
    let mut client = Client::connect(&addr).expect("connect");

    let spec = CreateSessionSpec {
        rows: 60,
        iterations: 2,
        seed: Some(5),
        ..CreateSessionSpec::default()
    };

    // Out-of-phase: labels before any presentation.
    let (session, _) = client.create_session(&spec).expect("create");
    match client.submit_labels(session, None) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::WrongPhase),
        other => panic!("expected wrong_phase, got {other:?}"),
    }

    // Capacity 1: a second session is refused with server_busy.
    match client.create_session(&spec) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::ServerBusy),
        other => panic!("expected server_busy, got {other:?}"),
    }

    // Wrong label cardinality leaves the presentation retryable.
    let pairs = client.next_pairs(session).expect("pairs");
    let sample_len = pairs
        .get("sample")
        .and_then(Json::as_array)
        .expect("sample member")
        .len();
    match client.submit_labels(session, Some(vec![true; sample_len + 1])) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::WrongPhase),
        other => panic!("expected wrong_phase on bad cardinality, got {other:?}"),
    }
    client
        .submit_labels(session, Some(vec![false; sample_len]))
        .expect("valid submit still lands");

    // next_pairs is idempotent: two asks, same presentation.
    let a = client.next_pairs(session).expect("pairs");
    let b = client.next_pairs(session).expect("pairs again");
    assert_eq!(
        a.get("sample").and_then(Json::as_array),
        b.get("sample").and_then(Json::as_array),
        "unanswered presentation must be re-served"
    );

    // Unknown / closed sessions.
    match client.next_pairs(9999) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected unknown_session, got {other:?}"),
    }
    client.close_session(session).expect("close");
    match client.next_pairs(session) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected unknown_session after close, got {other:?}"),
    }

    // The freed slot admits a new session; invalid configs get a typed reply.
    client.create_session(&spec).expect("create after close");
    let bad = CreateSessionSpec {
        test_frac: 1.5,
        ..spec
    };
    match client.create_session(&bad) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::InvalidConfig),
        other => panic!("expected invalid_config, got {other:?}"),
    }

    shut_down(handle, &addr);
}

/// Sessions idle past the timeout are evicted, counted, and the capacity
/// they held is reusable.
#[test]
fn idle_sessions_are_evicted_over_the_wire() {
    let (handle, addr) = test_server(1, Duration::from_millis(50));
    let mut client = Client::connect(&addr).expect("connect");
    let spec = CreateSessionSpec {
        rows: 60,
        iterations: 2,
        seed: Some(9),
        ..CreateSessionSpec::default()
    };
    let (first, _) = client.create_session(&spec).expect("create");
    std::thread::sleep(Duration::from_millis(120));

    // The next create evicts the idle session instead of reporting busy.
    let (second, _) = client.create_session(&spec).expect("create after idle");
    assert_ne!(first, second);
    match client.next_pairs(first) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected unknown_session for evicted id, got {other:?}"),
    }

    let status = client.status(None).expect("server status");
    assert_eq!(
        status.get("evicted_total").and_then(Json::as_u64),
        Some(1),
        "{status:?}"
    );
    assert_eq!(
        status.get("live_sessions").and_then(Json::as_u64),
        Some(1),
        "{status:?}"
    );

    shut_down(handle, &addr);
}

/// Session status reports progress mid-flight, and malformed wire bytes
/// get parse_error without killing the connection.
#[test]
fn status_and_parse_errors() {
    use std::io::{BufRead, BufReader, Write};

    let (handle, addr) = test_server(4, Duration::from_secs(300));
    let mut client = Client::connect(&addr).expect("connect");
    let spec = CreateSessionSpec {
        rows: 60,
        iterations: 3,
        seed: Some(3),
        ..CreateSessionSpec::default()
    };
    let (session, _) = client.create_session(&spec).expect("create");
    client.next_pairs(session).expect("pairs");
    let status = client.status(Some(session)).expect("session status");
    assert_eq!(
        status.get("awaiting_labels").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        status.get("iterations_done").and_then(Json::as_u64),
        Some(0)
    );

    // Raw socket: garbage line, then a valid one on the same connection.
    let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
    raw.write_all(b"this is not json\n").expect("write garbage");
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("error reply");
    let v = Json::parse(line.trim()).expect("reply is json");
    assert_eq!(v.get("error").and_then(Json::as_str), Some("parse_error"));
    line.clear();
    raw.write_all(b"{\"op\":\"status\"}\n")
        .expect("write status");
    reader.read_line(&mut line).expect("status reply");
    let v = Json::parse(line.trim()).expect("reply is json");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));

    shut_down(handle, &addr);
}
