//! Integration tests for the readiness-based transport: pipelining inside
//! one TCP segment, the typed `protocol_error` path for oversized lines,
//! blocking-transport parity, slow-loris eviction through the real serve
//! binary, and bounded shutdown latency on both transports.

// Test helpers run outside `#[test]` fns, where the workspace
// allow-expect-in-tests carve-out does not reach.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use et_serve::{
    run_batch, spawn, Client, CreateSessionSpec, Json, ServeMode, ServerConfig, StoreConfig,
};

fn server_cfg(mode: ServeMode) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        mode,
        store: StoreConfig {
            capacity: 4,
            shards: 2,
            idle_timeout: Duration::from_secs(300),
            base_seed: 7,
            ..StoreConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply line");
    assert!(!line.is_empty(), "connection closed before reply");
    Json::parse(line.trim()).expect("reply is JSON")
}

/// Several requests written in a single TCP segment are each answered, in
/// order, on the same connection — the framer must split the segment and
/// the per-connection inbox must keep arrival order.
#[test]
fn pipelined_requests_in_one_tcp_segment() {
    let handle = spawn(server_cfg(ServeMode::Event)).expect("bind");
    let addr = handle.addr().to_string();

    let mut raw = TcpStream::connect(&addr).expect("connect");
    // One write: a bad op (typed error), two statuses, and garbage. Four
    // replies must come back in exactly this order.
    raw.write_all(b"{\"op\":\"nope\"}\n{\"op\":\"status\"}\n{\"op\":\"status\"}\nnot json\n")
        .expect("pipelined write");
    let mut reader = BufReader::new(raw.try_clone().expect("clone"));

    let first = read_reply(&mut reader);
    assert_eq!(first.get("ok").and_then(Json::as_bool), Some(false));
    for _ in 0..2 {
        let reply = read_reply(&mut reader);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            reply.get("reply").and_then(Json::as_str),
            Some("server_status")
        );
    }
    let last = read_reply(&mut reader);
    assert_eq!(
        last.get("error").and_then(Json::as_str),
        Some("parse_error")
    );

    let mut client = Client::connect(&addr).expect("connect for shutdown");
    client.shutdown_server().expect("shutdown");
    handle.wait();
}

/// An oversized request line draws one typed `protocol_error` reply and
/// then the server closes the connection — on both transports, whether or
/// not the line ever saw its newline.
#[test]
fn oversized_line_gets_protocol_error_then_close() {
    for mode in [ServeMode::Event, ServeMode::Blocking] {
        let mut cfg = server_cfg(mode);
        cfg.max_line_bytes = 512;
        let handle = spawn(cfg).expect("bind");
        let addr = handle.addr().to_string();

        // Terminated oversized line.
        let mut raw = TcpStream::connect(&addr).expect("connect");
        let mut big = vec![b'x'; 2048];
        big.push(b'\n');
        raw.write_all(&big).expect("oversized write");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let reply = read_reply(&mut reader);
        assert_eq!(
            reply.get("error").and_then(Json::as_str),
            Some("protocol_error"),
            "{mode:?}: {reply:?}"
        );
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).expect("drain to EOF");
        assert!(
            rest.is_empty(),
            "{mode:?}: connection must close after the reply"
        );

        // Unterminated flood: never sends '\n', must still be rejected
        // once the ceiling is crossed instead of buffering forever.
        let mut raw = TcpStream::connect(&addr).expect("connect");
        raw.write_all(&vec![b'y'; 4096]).expect("flood write");
        let mut reader = BufReader::new(raw.try_clone().expect("clone"));
        let reply = read_reply(&mut reader);
        assert_eq!(
            reply.get("error").and_then(Json::as_str),
            Some("protocol_error"),
            "{mode:?}: {reply:?}"
        );
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).expect("drain to EOF");
        assert!(
            rest.is_empty(),
            "{mode:?}: connection must close after the reply"
        );

        let mut client = Client::connect(&addr).expect("connect for shutdown");
        client.shutdown_server().expect("shutdown");
        handle.wait();
    }
}

/// The `--blocking` transport speaks the identical protocol: a session
/// driven over it reproduces the seed-matched batch run bit-for-bit, so
/// the event loop is a pure transport swap with no domain drift.
#[test]
fn blocking_transport_matches_batch_exactly() {
    let handle = spawn(server_cfg(ServeMode::Blocking)).expect("bind");
    let addr = handle.addr().to_string();

    let spec = CreateSessionSpec {
        rows: 100,
        iterations: 5,
        seed: Some(23),
        ..CreateSessionSpec::default()
    };
    let mut client = Client::connect(&addr).expect("connect");
    let (session, seed) = client.create_session(&spec).expect("create");
    let outcome = client.drive_auto(session, seed).expect("drive");
    client.close_session(session).expect("close");

    let batch = run_batch(&spec, seed).expect("batch");
    assert_eq!(outcome.mae_series, batch.mae_series());
    assert_eq!(outcome.converged_at, batch.convergence.converged_at);

    client.shutdown_server().expect("shutdown");
    handle.wait();
}

/// Slow-loris defense through the real binary: a connection that dribbles
/// bytes without ever completing a request line is disconnected by the
/// idle timer (dribbling is NOT activity), while a well-behaved client on
/// the same server keeps getting answers.
#[test]
fn slow_loris_is_disconnected_by_the_idle_timer() {
    if !cfg!(unix) {
        eprintln!("SKIPPED: spawns the serve binary via unix process plumbing");
        return;
    }
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--conn-idle-timeout-secs",
            "1",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut addr = None;
    while addr.is_none() {
        let mut line = String::new();
        let n = stdout.read_line(&mut line).expect("read serve stdout");
        assert!(n > 0, "serve exited before listening");
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(rest.trim().to_string());
        }
    }
    let addr = addr.unwrap();

    let mut loris = TcpStream::connect(&addr).expect("loris connect");
    loris
        .set_read_timeout(Some(Duration::from_millis(250)))
        .expect("read timeout");
    let start = Instant::now();
    let mut disconnected = false;
    // Dribble one byte every 200ms — far below any byte-level timeout,
    // but never a complete line. The 1s idle timer must still fire.
    while start.elapsed() < Duration::from_secs(6) {
        if loris.write_all(b"x").is_err() {
            disconnected = true;
            break;
        }
        let mut probe = [0u8; 16];
        match loris.read(&mut probe) {
            Ok(0) => {
                disconnected = true;
                break;
            }
            Ok(_) => {} // no reply is expected; keep dribbling
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                disconnected = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    assert!(
        disconnected,
        "slow-loris connection survived 6s against a 1s idle timer"
    );

    // The server is still healthy for real clients.
    let mut client = Client::connect(&addr).expect("healthy connect");
    let status = client.status(None).expect("status");
    assert_eq!(status.get("ok").and_then(Json::as_bool), Some(true));
    client.shutdown_server().expect("shutdown");
    let code = child.wait().expect("serve exit");
    assert!(code.success(), "serve exited with {code:?}");
}

/// Shutdown is event-driven, not polled: from the shutdown request to full
/// teardown (acceptors, shards, workers joined) stays well under a second
/// on both transports, even with an idle connection parked on the server.
#[test]
fn shutdown_latency_is_bounded_without_polling() {
    for mode in [ServeMode::Event, ServeMode::Blocking] {
        let handle = spawn(server_cfg(mode)).expect("bind");
        let addr = handle.addr().to_string();

        // An idle connection that never speaks: teardown must not wait on it.
        let _parked = TcpStream::connect(&addr).expect("parked connect");

        let mut client = Client::connect(&addr).expect("connect");
        let start = Instant::now();
        client.shutdown_server().expect("shutdown acknowledged");
        handle.wait();
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(1),
            "{mode:?}: shutdown took {elapsed:?}; a poll interval is hiding somewhere"
        );
    }
}
