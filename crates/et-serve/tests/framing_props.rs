//! Property tests for the newline framing layer of the event transport:
//! arbitrary chunking of a byte stream never changes the recovered line
//! sequence, pipelined lines in one segment come out in order, and any
//! oversized line poisons the framer with a typed error instead of
//! ballooning memory or panicking.

use et_serve::conn::{FramingError, LineFramer};
use proptest::prelude::*;

/// Drains every currently-complete line out of the framer.
fn drain(f: &mut LineFramer) -> Result<Vec<String>, FramingError> {
    let mut lines = Vec::new();
    while let Some(line) = f.next_line()? {
        lines.push(line);
    }
    Ok(lines)
}

/// A request line that cannot contain its own terminator: a byte-driven
/// palette biased toward framing hazards (quotes, backslashes, control
/// bytes, multi-byte UTF-8), never `\n`.
fn arb_line() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..40).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| match b % 8 {
                0 => '"',
                1 => '\\',
                2 => '\t',
                3 => '\r',
                4 => 'é',
                5 => '😀',
                _ => char::from(b'a' + (b % 26)),
            })
            .collect()
    })
}

proptest! {
    /// Partial reads are invisible: however the wire bytes are sliced into
    /// read-sized chunks, the framer yields exactly the lines that a
    /// single-shot push yields.
    #[test]
    fn chunking_never_changes_the_line_sequence(
        lines in proptest::collection::vec(arb_line(), 0..12),
        chunk_sizes in proptest::collection::vec(1usize..16, 1..64),
    ) {
        let mut wire = Vec::new();
        for line in &lines {
            wire.extend_from_slice(line.as_bytes());
            wire.push(b'\n');
        }

        let mut whole = LineFramer::new(usize::MAX / 2);
        whole.push(&wire);
        let expected = drain(&mut whole).expect("no ceiling in play");

        let mut chunked = LineFramer::new(usize::MAX / 2);
        let mut got = Vec::new();
        let mut offset = 0;
        // Interleave pushes and drains exactly like the shard's read loop.
        for &sz in chunk_sizes.iter().cycle() {
            if offset >= wire.len() {
                break;
            }
            let end = (offset + sz).min(wire.len());
            chunked.push(&wire[offset..end]);
            offset = end;
            got.extend(drain(&mut chunked).expect("no ceiling in play"));
        }
        got.extend(drain(&mut chunked).expect("no ceiling in play"));

        prop_assert_eq!(got, expected);
    }

    /// Pipelining: any number of requests arriving in one TCP segment are
    /// recovered in order, whether terminated by `\n` or `\r\n`, and the
    /// lossy-UTF-8 decode matches what each line encoded.
    #[test]
    fn pipelined_segment_yields_every_line_in_order(
        lines in proptest::collection::vec(arb_line(), 1..12),
        crlf in proptest::collection::vec(any::<bool>(), 1..12),
    ) {
        let mut wire = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            wire.extend_from_slice(line.as_bytes());
            if crlf[i % crlf.len()] {
                wire.push(b'\r');
            }
            wire.push(b'\n');
        }
        let mut f = LineFramer::new(usize::MAX / 2);
        f.push(&wire);
        let got = drain(&mut f).expect("no ceiling in play");
        // Exactly one trailing '\r' is stripped per line: the appended one
        // under CRLF framing, else a '\r' the line itself happened to end
        // with (indistinguishable from CRLF on the wire).
        let expected: Vec<String> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if crlf[i % crlf.len()] {
                    l.clone()
                } else {
                    l.strip_suffix('\r').unwrap_or(l).to_string()
                }
            })
            .collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(f.buffered(), 0);
    }

    /// Any line over the ceiling — complete or still partial — surfaces
    /// `Oversized` no later than its own extraction, every line before it
    /// is delivered intact, the error is sticky, and once poisoned the
    /// framer stops buffering so memory is bounded.
    #[test]
    fn oversized_lines_poison_with_bounded_memory(
        prefix in proptest::collection::vec(arb_line(), 0..4),
        big_len in 65usize..512,
        terminated in any::<bool>(),
        chunk in 1usize..64,
    ) {
        let max = 64usize;
        let mut wire = Vec::new();
        let mut short_prefix = Vec::new();
        for line in &prefix {
            if line.len() <= max {
                wire.extend_from_slice(line.as_bytes());
                wire.push(b'\n');
                // A trailing '\r' reads back as CRLF framing and is stripped.
                short_prefix.push(line.strip_suffix('\r').unwrap_or(line).to_string());
            }
        }
        wire.extend(std::iter::repeat_n(b'x', big_len));
        if terminated {
            wire.push(b'\n');
        }

        let mut f = LineFramer::new(max);
        let mut got = Vec::new();
        let mut saw_error = false;
        for piece in wire.chunks(chunk) {
            f.push(piece);
            match drain(&mut f) {
                Ok(lines) => got.extend(lines),
                Err(FramingError::Oversized { max: m }) => {
                    prop_assert_eq!(m, max);
                    saw_error = true;
                }
            }
        }
        // The oversized tail may still be a small partial if the last
        // chunk hasn't pushed it past the ceiling; one more probe decides.
        if !saw_error {
            saw_error = drain(&mut f).is_err();
        }
        prop_assert!(saw_error, "an oversized line must poison the framer");
        prop_assert!(f.poisoned());
        prop_assert_eq!(got, short_prefix);

        // Sticky and bounded: further pushes are dropped, the error repeats.
        let before = f.buffered();
        f.push(&[b'y'; 1024]);
        prop_assert_eq!(f.buffered(), before);
        prop_assert_eq!(f.next_line(), Err(FramingError::Oversized { max }));
    }

    /// Arbitrary garbage bytes never panic the framer, and every byte is
    /// either yielded, still buffered, or consumed as a terminator.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..32,
    ) {
        let mut f = LineFramer::new(usize::MAX / 2);
        let mut lines = 0usize;
        for piece in bytes.chunks(chunk) {
            f.push(piece);
            lines += drain(&mut f).expect("no ceiling in play").len();
        }
        let terminators = bytes.iter().filter(|&&b| b == b'\n').count();
        prop_assert_eq!(lines, terminators);
        let consumed = match bytes.iter().rposition(|&b| b == b'\n') {
            Some(last) => last + 1,
            None => 0,
        };
        prop_assert_eq!(f.buffered(), bytes.len() - consumed);
    }
}
