//! Crash-injection harness: run the *real* `serve` binary with a data
//! dir, `kill -9` it mid-stream, restart it, and prove that
//!
//! 1. no acknowledged label is lost (every `labeled` reply the client
//!    received before the kill is visible in the recovered session), and
//! 2. the session driven across two crashes finishes **bit-identical** to
//!    an uninterrupted in-process batch run of the same `(spec, seed)` —
//!    MAE curve and both agents' confidences compared via `f64::to_bits`.
//!
//! The wire makes that comparison sound: `Json::Num` encodes floats
//! shortest-round-trip, so the bits survive the protocol.

// Test harness: expect/unwrap over error plumbing.
#![allow(clippy::expect_used, clippy::unwrap_used)]

#[cfg(not(unix))]
#[test]
fn crash_recovery_kill9() {
    // Child::kill is only a guaranteed-uncatchable SIGKILL on unix; on
    // other platforms the "crash" would be too polite to prove anything.
    eprintln!("SKIPPED: crash_recovery_kill9 requires unix (kill -9 semantics)");
}

#[cfg(unix)]
mod kill9 {
    use std::io::{BufRead, BufReader};
    use std::path::{Path, PathBuf};
    use std::process::{Child, ChildStdout, Command, Stdio};

    use et_core::run_session;
    use et_serve::{build_parts, Client, CreateSessionSpec, Json};

    /// The serve binary under test, with its stdout pipe held open so a
    /// shutdown-time `println!` never hits a closed pipe.
    struct ServerProc {
        child: Child,
        stdout: BufReader<ChildStdout>,
        /// `recovered N sessions ...` count printed at startup.
        recovered: usize,
        addr: String,
    }

    impl ServerProc {
        fn spawn(data_dir: &Path) -> ServerProc {
            let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
                .args([
                    "--addr",
                    "127.0.0.1:0",
                    "--workers",
                    "2",
                    "--seed",
                    "9",
                    "--fsync",
                    "always",
                    "--snapshot-every",
                    "3",
                    "--data-dir",
                ])
                .arg(data_dir)
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn serve binary");
            let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
            let mut recovered = None;
            let mut addr = None;
            // The binary prints `recovered N sessions (...)` then
            // `listening on ADDR`; stop once the listener is up. EOF
            // before that means the binary died — fail loudly.
            while addr.is_none() {
                let mut line = String::new();
                let n = stdout.read_line(&mut line).expect("read serve stdout");
                assert!(n > 0, "serve exited before listening (startup failed)");
                let line = line.trim();
                if let Some(rest) = line.strip_prefix("recovered ") {
                    let count: usize = rest
                        .split_whitespace()
                        .next()
                        .and_then(|w| w.parse().ok())
                        .expect("recovery line count");
                    recovered = Some(count);
                } else if let Some(rest) = line.strip_prefix("listening on ") {
                    addr = Some(rest.to_string());
                }
            }
            ServerProc {
                child,
                stdout,
                recovered: recovered.expect("recovery summary line"),
                addr: addr.unwrap(),
            }
        }

        /// SIGKILL — no flush, no destructors, no goodbye.
        fn kill9(mut self) {
            self.child.kill().expect("kill -9 serve");
            self.child.wait().expect("reap serve");
        }

        /// Graceful wire shutdown; asserts the flush-on-exit path ran.
        fn shutdown(mut self, client: &mut Client) {
            client.shutdown_server().expect("shutdown request");
            let status = self.child.wait().expect("reap serve");
            assert!(status.success(), "serve exited uncleanly: {status:?}");
            let mut rest = String::new();
            std::io::Read::read_to_string(&mut self.stdout, &mut rest).expect("drain stdout");
            assert!(
                rest.contains("shut down cleanly"),
                "missing clean-shutdown line in {rest:?}"
            );
        }
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "et-crash-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    /// Runs `count` interactions with hosted labels, returning how many
    /// `labeled` acknowledgements came back.
    fn drive_acked(client: &mut Client, session: u64, count: usize) -> usize {
        let mut acked = 0;
        for _ in 0..count {
            let reply = client.next_pairs(session).expect("next_pairs");
            assert_eq!(
                reply.get("reply").and_then(Json::as_str),
                Some("pairs"),
                "expected a presentation"
            );
            client.submit_labels(session, None).expect("submit_labels");
            acked += 1;
        }
        acked
    }

    fn status_field_bits(status: &Json, key: &str) -> Vec<u64> {
        status
            .get(key)
            .and_then(Json::as_array)
            .unwrap_or_else(|| panic!("status missing array {key:?}"))
            .iter()
            .map(|v| v.as_f64().expect("numeric element").to_bits())
            .collect()
    }

    #[test]
    fn killed_server_recovers_every_acknowledged_label_bit_identically() {
        let spec = CreateSessionSpec {
            rows: 120,
            iterations: 10,
            seed: Some(4242),
            ..CreateSessionSpec::default()
        };
        let data_dir = scratch_dir("kill9");

        // --- run 1: create, ack 4 labels, then kill -9 mid-stream. ---
        let server = ServerProc::spawn(&data_dir);
        assert_eq!(server.recovered, 0, "fresh data dir recovers nothing");
        let mut client = Client::connect(&server.addr).expect("connect");
        let (session, seed) = client.create_session(&spec).expect("create");
        assert_eq!(seed, 4242, "explicit seed is echoed");
        let mut acked = drive_acked(&mut client, session, 4);
        server.kill9();

        // --- run 2: recover, check nothing acknowledged was lost, ack 3
        // more, kill again (this time past a snapshot boundary). ---
        let server = ServerProc::spawn(&data_dir);
        assert_eq!(server.recovered, 1, "the journaled session comes back");
        let mut client = Client::connect(&server.addr).expect("connect");
        let status = client.status(Some(session)).expect("status");
        let done = status
            .get("iterations_done")
            .and_then(Json::as_u64)
            .expect("iterations_done") as usize;
        assert!(
            done >= acked,
            "lost acknowledged labels: {done} recovered < {acked} acked"
        );
        // The server may have applied a label it never got to acknowledge;
        // resync our count to what actually survived.
        acked = done;
        acked += drive_acked(&mut client, session, 3);
        server.kill9();

        // --- run 3: recover again and drive to completion. ---
        let server = ServerProc::spawn(&data_dir);
        assert_eq!(server.recovered, 1);
        let mut client = Client::connect(&server.addr).expect("connect");
        let status = client.status(Some(session)).expect("status");
        let done = status
            .get("iterations_done")
            .and_then(Json::as_u64)
            .expect("iterations_done") as usize;
        assert!(
            done >= acked,
            "lost acknowledged labels: {done} recovered < {acked} acked"
        );
        loop {
            let reply = client.next_pairs(session).expect("next_pairs");
            match reply.get("reply").and_then(Json::as_str) {
                Some("pairs") => {
                    client.submit_labels(session, None).expect("submit_labels");
                }
                Some("done") => break,
                other => panic!("unexpected reply kind {other:?}"),
            }
        }

        // --- the money shot: twice-crashed == uninterrupted batch. ---
        let status = client.status(Some(session)).expect("final status");
        let wire_mae = status_field_bits(&status, "mae_series");
        let wire_learner = status_field_bits(&status, "learner_confidences");
        let wire_trainer = status_field_bits(&status, "trainer_confidences");

        let mut parts = build_parts(&spec, seed).expect("batch parts");
        let batch = run_session(
            &parts.table,
            parts.space.clone(),
            &parts.dirty_rows,
            parts.cfg.clone(),
            &mut parts.trainer,
            &mut parts.learner,
        );
        let batch_mae: Vec<u64> = batch.metrics.iter().map(|m| m.mae.to_bits()).collect();
        let batch_learner: Vec<u64> = parts
            .learner
            .confidences()
            .iter()
            .map(|c| c.to_bits())
            .collect();
        let batch_trainer: Vec<u64> = parts
            .trainer
            .belief()
            .confidences()
            .iter()
            .map(|c| c.to_bits())
            .collect();
        assert_eq!(wire_mae, batch_mae, "MAE curve diverged from batch");
        assert_eq!(wire_learner, batch_learner, "learner belief diverged");
        assert_eq!(wire_trainer, batch_trainer, "trainer belief diverged");

        // Clean exit exercises the flush-all path; closing first would
        // delete the session dir, so shut down with it still live.
        server.shutdown(&mut client);
        std::fs::remove_dir_all(&data_dir).ok();
    }
}
