//! Minimal end-to-end demo: spin the line-JSON server on an ephemeral
//! port, drive one exploratory-training session over the wire with the
//! auto-labeller, and print the final status.
//!
//! Run with `cargo run -p et-serve --example wire_session`.

// Example code favours direct `expect` over error plumbing.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::time::Duration;

use et_serve::{spawn, Client, CreateSessionSpec, ServerConfig, StoreConfig};

fn main() {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        store: StoreConfig {
            capacity: 4,
            shards: 2,
            idle_timeout: Duration::from_secs(60),
            base_seed: 7,
            ..StoreConfig::default()
        },
        ..ServerConfig::default()
    };
    let handle = spawn(cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    println!("serving on {addr}");

    let mut client = Client::connect(&addr).expect("connect");
    let spec = CreateSessionSpec {
        rows: 120,
        iterations: 8,
        seed: Some(41),
        ..CreateSessionSpec::default()
    };
    let (session, seed) = client.create_session(&spec).expect("create session");
    println!("session {session} created with seed {seed}");

    let outcome = client.drive_auto(session, seed).expect("drive session");
    println!(
        "drove {} iteration(s); final MAE {:.4}; converged at {:?}",
        outcome.iterations_run,
        outcome.mae_series.last().copied().unwrap_or(f64::NAN),
        outcome.converged_at
    );

    client.close_session(session).expect("close session");
    client.shutdown_server().expect("shutdown");
    handle.wait();
}
