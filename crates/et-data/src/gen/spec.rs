//! Generic FD-respecting dataset generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::Schema;
use crate::table::Table;
use crate::FdSpec;

/// How an attribute's values are produced.
#[derive(Debug, Clone)]
pub enum AttrKind {
    /// Sampled independently per row from `cardinality` values.
    ///
    /// `skew` ∈ [0, ∞) biases sampling toward low value indices
    /// (`skew = 0.0` is uniform); skewed base attributes produce the large
    /// left-hand-side groups that approximate-FD learning feeds on.
    Base {
        /// Number of distinct values in the attribute's domain.
        cardinality: usize,
        /// Skew exponent; the value index is `floor(card * u^(1+skew))`.
        skew: f64,
    },
    /// A deterministic function of the attributes at indices `from`,
    /// mapped into `cardinality` distinct values. Generates data on which
    /// the FD `from -> this` holds exactly.
    Derived {
        /// Indices of the determining attributes (may themselves be derived).
        from: Vec<usize>,
        /// Number of distinct output values.
        cardinality: usize,
    },
    /// Like [`AttrKind::Derived`], but each row deviates from the
    /// deterministic value with probability `noise` (sampled uniformly from
    /// the domain instead). The FD `from -> this` holds *approximately* on
    /// clean data — the shape of the user study's plausible-but-wrong
    /// alternative FDs.
    NoisyDerived {
        /// Indices of the determining attributes.
        from: Vec<usize>,
        /// Number of distinct output values.
        cardinality: usize,
        /// Per-row deviation probability.
        noise: f64,
    },
}

/// One attribute of a [`DatasetSpec`].
#[derive(Debug, Clone)]
pub struct AttrGen {
    /// Attribute name.
    pub name: String,
    /// Value model.
    pub kind: AttrKind,
}

impl AttrGen {
    /// A base (independently sampled) attribute.
    ///
    /// # Panics
    /// Panics when `cardinality` is zero.
    pub fn base(name: &str, cardinality: usize, skew: f64) -> Self {
        assert!(cardinality > 0, "cardinality must be positive");
        Self {
            name: name.to_owned(),
            kind: AttrKind::Base { cardinality, skew },
        }
    }

    /// A derived attribute: `from -> name` holds exactly on generated data.
    ///
    /// # Panics
    /// Panics when `cardinality` is zero or `from` is empty.
    pub fn derived(name: &str, from: Vec<usize>, cardinality: usize) -> Self {
        assert!(cardinality > 0, "cardinality must be positive");
        assert!(!from.is_empty(), "derived attribute needs determinants");
        Self {
            name: name.to_owned(),
            kind: AttrKind::Derived { from, cardinality },
        }
    }

    /// A noisily derived attribute: `from -> name` holds with roughly
    /// `1 - noise` per-row fidelity on generated data.
    ///
    /// # Panics
    /// Panics when `cardinality` is zero or `from` is empty.
    pub fn noisy_derived(name: &str, from: Vec<usize>, cardinality: usize, noise: f64) -> Self {
        assert!(cardinality > 0, "cardinality must be positive");
        assert!(!from.is_empty(), "derived attribute needs determinants");
        assert!((0.0..=1.0).contains(&noise), "noise must be a probability");
        Self {
            name: name.to_owned(),
            kind: AttrKind::NoisyDerived {
                from,
                cardinality,
                noise,
            },
        }
    }
}

/// A complete recipe for generating a clean dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name (used in reports).
    pub name: String,
    /// Attribute recipes; schema order.
    pub attrs: Vec<AttrGen>,
}

/// A generated clean table together with the FDs that hold on it by
/// construction.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Dataset name.
    pub name: String,
    /// The generated (clean) table.
    pub table: Table,
    /// FDs that hold exactly on `table` by construction, one per derived
    /// attribute.
    pub exact_fds: Vec<FdSpec>,
}

impl DatasetSpec {
    /// The exact FDs this spec guarantees (one per noiselessly derived
    /// attribute).
    pub fn exact_fds(&self) -> Vec<FdSpec> {
        self.attrs
            .iter()
            .enumerate()
            .filter_map(|(i, a)| match &a.kind {
                AttrKind::Derived { from, .. } => Some(FdSpec::new(from.clone(), i)),
                AttrKind::Base { .. } | AttrKind::NoisyDerived { .. } => None,
            })
            .collect()
    }

    /// The approximate FDs this spec encodes (one per noisily derived
    /// attribute), with their noise levels.
    pub fn approximate_fds(&self) -> Vec<(FdSpec, f64)> {
        self.attrs
            .iter()
            .enumerate()
            .filter_map(|(i, a)| match &a.kind {
                AttrKind::NoisyDerived { from, noise, .. } => {
                    Some((FdSpec::new(from.clone(), i), *noise))
                }
                _ => None,
            })
            .collect()
    }

    /// Generates `rows` rows deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if derived attributes form a cycle or reference out-of-range
    /// indices.
    pub fn generate(&self, rows: usize, seed: u64) -> GeneratedDataset {
        let order = self.topo_order();
        let n_attrs = self.attrs.len();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);

        // Value *indices* per attribute per row; texts are derived from them.
        let mut vals: Vec<Vec<u32>> = vec![Vec::with_capacity(rows); n_attrs];
        #[allow(clippy::needless_range_loop)] // `row` indexes *inner* vectors across attrs
        for row in 0..rows {
            for &a in &order {
                let v = match &self.attrs[a].kind {
                    AttrKind::Base { cardinality, skew } => {
                        let u: f64 = rng.gen::<f64>();
                        let idx = (*cardinality as f64 * u.powf(1.0 + *skew)) as usize;
                        idx.min(cardinality - 1) as u32
                    }
                    AttrKind::Derived { from, cardinality } => {
                        derive_value(seed, a, from, cardinality, &vals, row)
                    }
                    AttrKind::NoisyDerived {
                        from,
                        cardinality,
                        noise,
                    } => {
                        if rng.gen::<f64>() < *noise {
                            rng.gen_range(0..*cardinality) as u32
                        } else {
                            derive_value(seed, a, from, cardinality, &vals, row)
                        }
                    }
                };
                vals[a].push(v);
            }
        }

        let schema = Schema::new(self.attrs.iter().map(|a| a.name.clone()));
        let mut b = Table::builder(schema);
        let mut cells: Vec<String> = Vec::with_capacity(n_attrs);
        #[allow(clippy::needless_range_loop)] // `row` indexes every attribute's value vector
        for row in 0..rows {
            cells.clear();
            for (a, attr) in self.attrs.iter().enumerate() {
                cells.push(format!("{}_{}", attr.name, vals[a][row]));
            }
            b.push_row(&cells);
        }
        GeneratedDataset {
            name: self.name.clone(),
            table: b.finish(),
            exact_fds: self.exact_fds(),
        }
    }

    /// Topologically orders attributes so determinants are generated before
    /// the attributes they derive.
    fn topo_order(&self) -> Vec<usize> {
        let n = self.attrs.len();
        let mut state = vec![0u8; n]; // 0 unvisited, 1 visiting, 2 done
        let mut order = Vec::with_capacity(n);
        fn visit(a: usize, attrs: &[AttrGen], state: &mut [u8], order: &mut Vec<usize>) {
            assert!(
                a < attrs.len(),
                "derived attribute references index {a} out of range"
            );
            assert!(
                state[a] != 1,
                "cycle among derived attributes involving `{}`",
                attrs[a].name
            );
            if state[a] == 2 {
                return;
            }
            state[a] = 1;
            let from = match &attrs[a].kind {
                AttrKind::Derived { from, .. } | AttrKind::NoisyDerived { from, .. } => Some(from),
                AttrKind::Base { .. } => None,
            };
            if let Some(from) = from {
                for &f in from {
                    assert!(
                        f != a,
                        "attribute `{}` cannot derive from itself",
                        attrs[a].name
                    );
                    visit(f, attrs, state, order);
                }
            }
            state[a] = 2;
            order.push(a);
        }
        for a in 0..n {
            visit(a, &self.attrs, &mut state, &mut order);
        }
        order
    }
}

/// The deterministic value of a derived attribute: a hash of the
/// determinant values, folded into the output domain.
fn derive_value(
    seed: u64,
    attr: usize,
    from: &[usize],
    cardinality: &usize,
    vals: &[Vec<u32>],
    row: usize,
) -> u32 {
    let mut h = seed ^ (attr as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
    for &f in from {
        h = splitmix64(h ^ u64::from(vals[f][row]) ^ ((f as u64) << 32));
    }
    (h % *cardinality as u64) as u32
}

/// SplitMix64 mixing step — a tiny, high-quality deterministic hash used to
/// derive dependent attribute values.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec() -> DatasetSpec {
        DatasetSpec {
            name: "toy".into(),
            attrs: vec![
                AttrGen::base("zip", 10, 0.5),
                AttrGen::derived("city", vec![0], 6),
                AttrGen::derived("state", vec![0], 4),
                AttrGen::base("salary", 20, 0.0),
                AttrGen::derived("bracket", vec![2, 3], 5),
            ],
        }
    }

    fn fd_holds(t: &Table, fd: &FdSpec) -> bool {
        let lhs: Vec<u16> = fd.lhs.iter().map(|&a| a as u16).collect();
        let g = t.group_by(&lhs);
        g.groups.iter().all(|rows| {
            let first = t.sym(rows[0] as usize, fd.rhs as u16);
            rows.iter()
                .all(|&r| t.sym(r as usize, fd.rhs as u16) == first)
        })
    }

    #[test]
    fn derived_fds_hold_exactly() {
        let ds = toy_spec().generate(400, 7);
        assert_eq!(ds.exact_fds.len(), 3);
        for fd in &ds.exact_fds {
            assert!(fd_holds(&ds.table, fd), "{fd:?} should hold");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = toy_spec().generate(100, 42);
        let b = toy_spec().generate(100, 42);
        for r in 0..100 {
            assert_eq!(a.table.row_texts(r), b.table.row_texts(r));
        }
        let c = toy_spec().generate(100, 43);
        let differs = (0..100).any(|r| a.table.row_texts(r) != c.table.row_texts(r));
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn skew_produces_groups() {
        let ds = toy_spec().generate(300, 1);
        // zip has cardinality 10 over 300 rows: every value reused.
        let g = ds.table.group_by(&[0]);
        assert!(g.groups.iter().any(|grp| grp.len() >= 20));
    }

    #[test]
    fn cardinality_respected() {
        let ds = toy_spec().generate(500, 3);
        assert!(ds.table.cardinality(0) <= 10);
        assert!(ds.table.cardinality(1) <= 6);
        assert!(ds.table.cardinality(4) <= 5);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_spec_rejected() {
        let spec = DatasetSpec {
            name: "bad".into(),
            attrs: vec![
                AttrGen::derived("a", vec![1], 3),
                AttrGen::derived("b", vec![0], 3),
            ],
        };
        let _ = spec.generate(10, 0);
    }

    #[test]
    fn forward_references_allowed() {
        // `city` (index 0) derives from `zip` (index 1) declared later.
        let spec = DatasetSpec {
            name: "fwd".into(),
            attrs: vec![
                AttrGen::derived("city", vec![1], 5),
                AttrGen::base("zip", 8, 0.0),
            ],
        };
        let ds = spec.generate(200, 9);
        assert!(fd_holds(&ds.table, &ds.exact_fds[0]));
    }
}
