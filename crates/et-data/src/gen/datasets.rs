//! The paper's four evaluation datasets, reproduced synthetically.
//!
//! Cardinalities scale with the requested row count so group sizes (and thus
//! violation-pair structure) stay realistic at any scale. Each generator
//! returns the clean table plus the exact FDs that hold by construction;
//! [`crate::inject`] is used afterwards to introduce controlled violations.

use super::spec::{AttrGen, DatasetSpec, GeneratedDataset};

/// The four datasets of the paper's empirical study (Appendix C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetName {
    /// Open Movie Database sample (user study + empirical study).
    Omdb,
    /// Alaska airports (user study + empirical study).
    Airport,
    /// Hospital quality data — 19 attributes, six exact FDs.
    Hospital,
    /// Synthetic tax records — 15 attributes, four exact FDs.
    Tax,
}

impl DatasetName {
    /// All four datasets, in the order the paper reports them.
    pub const ALL: [DatasetName; 4] = [
        DatasetName::Omdb,
        DatasetName::Airport,
        DatasetName::Hospital,
        DatasetName::Tax,
    ];

    /// Human-readable name.
    pub fn as_str(&self) -> &'static str {
        match self {
            DatasetName::Omdb => "OMDB",
            DatasetName::Airport => "Airport",
            DatasetName::Hospital => "Hospital",
            DatasetName::Tax => "Tax",
        }
    }

    /// Generates the dataset at the given size and seed.
    pub fn generate(&self, rows: usize, seed: u64) -> GeneratedDataset {
        match self {
            DatasetName::Omdb => omdb(rows, seed),
            DatasetName::Airport => airport(rows, seed),
            DatasetName::Hospital => hospital(rows, seed),
            DatasetName::Tax => tax(rows, seed),
        }
    }
}

fn card(rows: usize, divisor: usize, min: usize) -> usize {
    (rows / divisor).max(min)
}

/// OMDB movie/TV data.
///
/// Exact FDs by construction:
/// `(title, year) -> rating`, `rating -> type`, `(title, year) -> genre`
/// (so the Table 2 scenario-4 target `(title, year) -> (type, genre)` and
/// scenario-5 target `rating -> type` both hold on clean data).
pub fn omdb(rows: usize, seed: u64) -> GeneratedDataset {
    let spec = DatasetSpec {
        name: "OMDB".into(),
        attrs: vec![
            AttrGen::base("title", card(rows, 5, 8), 1.0),   // 0
            AttrGen::base("year", 30, 0.6),                  // 1
            AttrGen::derived("rating", vec![0, 1], 8),       // 2
            AttrGen::derived("type", vec![2], 2),            // 3
            AttrGen::derived("genre", vec![0, 1], 12),       // 4
            AttrGen::base("runtime", card(rows, 6, 6), 0.0), // 5
            AttrGen::base("language", 5, 0.8),               // 6
        ],
    };
    spec.generate(rows, seed)
}

/// Alaska airport facilities.
///
/// Exact FDs by construction:
/// `sitenumber -> facilityname`, `(facilityname, type) -> manager`,
/// `manager -> owner` (the Table 2 scenario-1 and scenario-3 targets).
pub fn airport(rows: usize, seed: u64) -> GeneratedDataset {
    let spec = DatasetSpec {
        name: "Airport".into(),
        attrs: vec![
            AttrGen::base("sitenumber", card(rows, 8, 6), 0.9), // 0
            AttrGen::derived("facilityname", vec![0], card(rows, 10, 5)), // 1
            AttrGen::base("type", 3, 0.4),                      // 2
            AttrGen::derived("manager", vec![1, 2], card(rows, 12, 5)), // 3
            AttrGen::derived("owner", vec![3], card(rows, 16, 4)), // 4
        ],
    };
    spec.generate(rows, seed)
}

/// Hospital quality data — 19 attributes, six exact FDs, matching the
/// error-detection literature's real dataset structure.
///
/// Exact FDs by construction:
/// `providernumber -> hospitalname`, `zipcode -> city`, `zipcode -> state`,
/// `phonenumber -> zipcode`, `measurecode -> measurename`,
/// `measurecode -> condition`.
pub fn hospital(rows: usize, seed: u64) -> GeneratedDataset {
    let spec = DatasetSpec {
        name: "Hospital".into(),
        attrs: vec![
            AttrGen::base("providernumber", card(rows, 8, 6), 0.8), // 0
            AttrGen::derived("hospitalname", vec![0], card(rows, 9, 5)), // 1
            AttrGen::base("address1", card(rows, 3, 8), 0.0),       // 2
            AttrGen::base("address2", 3, 1.5),                      // 3
            AttrGen::base("address3", 2, 1.5),                      // 4
            AttrGen::derived("city", vec![7], 30),                  // 5
            AttrGen::derived("state", vec![7], 15),                 // 6
            AttrGen::derived("zipcode", vec![9], 40),               // 7
            AttrGen::base("countyname", 25, 0.5),                   // 8
            AttrGen::base("phonenumber", card(rows, 6, 8), 0.8),    // 9
            AttrGen::base("hospitaltype", 4, 0.5),                  // 10
            AttrGen::base("hospitalowner", 6, 0.7),                 // 11
            AttrGen::base("emergencyservice", 2, 0.0),              // 12
            AttrGen::derived("condition", vec![14], 10),            // 13
            AttrGen::base("measurecode", 20, 0.5),                  // 14
            AttrGen::derived("measurename", vec![14], 20),          // 15
            AttrGen::base("score", 30, 0.3),                        // 16
            AttrGen::base("sample", 40, 0.0),                       // 17
            AttrGen::base("stateavg", 30, 0.2),                     // 18
        ],
    };
    spec.generate(rows, seed)
}

/// Synthetic tax records — 15 attributes, four exact FDs, matching the
/// error-detection literature's generator.
///
/// Exact FDs by construction:
/// `zip -> city`, `zip -> state`, `state -> singleexemp`,
/// `(state, haschild) -> childexemp`.
pub fn tax(rows: usize, seed: u64) -> GeneratedDataset {
    let spec = DatasetSpec {
        name: "Tax".into(),
        attrs: vec![
            AttrGen::base("fname", card(rows, 3, 10), 0.3), // 0
            AttrGen::base("lname", card(rows, 3, 10), 0.3), // 1
            AttrGen::base("gender", 2, 0.0),                // 2
            AttrGen::base("areacode", 30, 0.5),             // 3
            AttrGen::base("phone", card(rows, 2, 10), 0.0), // 4
            AttrGen::derived("city", vec![7], 35),          // 5
            AttrGen::derived("state", vec![7], 18),         // 6
            AttrGen::base("zip", 45, 0.6),                  // 7
            AttrGen::base("maritalstatus", 2, 0.2),         // 8
            AttrGen::base("haschild", 2, 0.0),              // 9
            AttrGen::base("salary", 40, 0.3),               // 10
            AttrGen::base("rate", 15, 0.4),                 // 11
            AttrGen::derived("singleexemp", vec![6], 10),   // 12
            AttrGen::base("marriedexemp", 10, 0.4),         // 13
            AttrGen::derived("childexemp", vec![6, 9], 12), // 14
        ],
    };
    spec.generate(rows, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FdSpec;

    fn fd_holds(t: &crate::Table, fd: &FdSpec) -> bool {
        let lhs: Vec<u16> = fd.lhs.iter().map(|&a| a as u16).collect();
        let g = t.group_by(&lhs);
        g.groups.iter().all(|rows| {
            let first = t.sym(rows[0] as usize, fd.rhs as u16);
            rows.iter()
                .all(|&r| t.sym(r as usize, fd.rhs as u16) == first)
        })
    }

    #[test]
    fn paper_dataset_shapes() {
        let h = hospital(200, 1);
        assert_eq!(h.table.ncols(), 19, "Hospital has 19 attributes");
        assert_eq!(h.exact_fds.len(), 6, "Hospital has six exact FDs");
        let t = tax(200, 1);
        assert_eq!(t.table.ncols(), 15, "Tax has 15 attributes");
        assert_eq!(t.exact_fds.len(), 4, "Tax has four exact FDs");
    }

    #[test]
    fn all_exact_fds_hold_on_clean_data() {
        for name in DatasetName::ALL {
            let ds = name.generate(250, 11);
            for fd in &ds.exact_fds {
                assert!(
                    fd_holds(&ds.table, fd),
                    "{}: {} must hold on clean data",
                    ds.name,
                    fd.display(ds.table.schema())
                );
            }
        }
    }

    #[test]
    fn omdb_scenario_targets_hold() {
        let ds = omdb(300, 5);
        let s = ds.table.schema();
        let ty = s.id_of("type").unwrap() as usize;
        let title = s.id_of("title").unwrap() as usize;
        let year = s.id_of("year").unwrap() as usize;
        // Scenario 4 target: (title, year) -> type (holds transitively
        // through rating).
        assert!(fd_holds(&ds.table, &FdSpec::new(vec![title, year], ty)));
    }

    #[test]
    fn datasets_have_group_structure() {
        // Approximate-FD learning needs LHS groups of size >= 2.
        for name in DatasetName::ALL {
            let ds = name.generate(300, 2);
            for fd in &ds.exact_fds {
                let lhs: Vec<u16> = fd.lhs.iter().map(|&a| a as u16).collect();
                let g = ds.table.group_by(&lhs);
                let pairs: usize = g
                    .groups
                    .iter()
                    .map(|grp| grp.len() * (grp.len() - 1) / 2)
                    .sum();
                assert!(
                    pairs >= 20,
                    "{}: {} has only {pairs} within-group pairs",
                    ds.name,
                    fd.display(ds.table.schema())
                );
            }
        }
    }

    #[test]
    fn generate_via_name_enum() {
        let ds = DatasetName::Omdb.generate(50, 3);
        assert_eq!(ds.name, "OMDB");
        assert_eq!(ds.table.nrows(), 50);
    }
}
