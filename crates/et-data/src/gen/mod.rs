//! Synthetic dataset generation.
//!
//! The paper evaluates on four datasets (OMDB, Airport, Hospital, Tax). We
//! regenerate each one synthetically with the *same schema* and the *same
//! exact-FD structure* reported in the paper (Hospital: 19 attributes and
//! six exact FDs; Tax: 15 attributes and four exact FDs; OMDB/Airport: the
//! scenario schemas of Table 2). The generic machinery lives in
//! [`DatasetSpec`]: attributes are either *base* (sampled independently with
//! a configurable cardinality and skew, so that left-hand-side groups of
//! realistic sizes exist) or *derived* (a deterministic function of other
//! attributes, which makes the corresponding FD hold exactly on clean data).
//! Error injection afterwards introduces controlled violations
//! ([`crate::inject`]).

mod datasets;
mod spec;

pub use datasets::{airport, hospital, omdb, tax, DatasetName};
pub use spec::{AttrGen, AttrKind, DatasetSpec, GeneratedDataset};
