//! A BART-style error taxonomy (Arocena et al., PVLDB 2015).
//!
//! [`crate::inject`] drives violation *degrees* for the FD experiments;
//! this module provides the error *shapes* real cleaning systems face.
//! Each error type perturbs cells differently, which matters for
//! downstream detectors:
//!
//! * [`ErrorKind::ValueSwap`] — a cell takes another existing value of its
//!   column (plausible-looking errors; hardest to spot).
//! * [`ErrorKind::Typo`] — character-level noise appended to the value
//!   (fresh values; break every FD whose RHS they touch).
//! * [`ErrorKind::Missing`] — the cell is blanked to an empty marker.
//! * [`ErrorKind::Transposition`] — two rows swap their cell in one column
//!   (pairwise consistent damage).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::AttrId;
use crate::table::Table;

/// The shape of an injected error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Replace the cell with a different existing value of the column.
    ValueSwap,
    /// Append typo noise, creating a fresh value.
    Typo,
    /// Blank the cell.
    Missing,
    /// Swap the cell with another row's cell in the same column.
    Transposition,
}

impl ErrorKind {
    /// All supported kinds.
    pub const ALL: [ErrorKind; 4] = [
        ErrorKind::ValueSwap,
        ErrorKind::Typo,
        ErrorKind::Missing,
        ErrorKind::Transposition,
    ];

    /// Display name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::ValueSwap => "value-swap",
            ErrorKind::Typo => "typo",
            ErrorKind::Missing => "missing",
            ErrorKind::Transposition => "transposition",
        }
    }
}

/// The marker text used for blanked cells.
pub const MISSING_MARKER: &str = "<missing>";

/// One applied error, for ground-truth bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedError {
    /// What kind of perturbation.
    pub kind: ErrorKind,
    /// Affected cells as `(row, attr)` — two entries for transpositions.
    pub cells: Vec<(usize, AttrId)>,
}

/// A configured error generator over selected attributes.
#[derive(Debug, Clone)]
pub struct ErrorGenerator {
    /// Relative frequency of each error kind (must not all be zero).
    pub weights: Vec<(ErrorKind, f64)>,
    /// Attributes eligible for perturbation.
    pub attrs: Vec<AttrId>,
    /// RNG seed.
    pub seed: u64,
}

impl ErrorGenerator {
    /// A generator perturbing `attrs` with uniform kind weights.
    pub fn uniform(attrs: Vec<AttrId>, seed: u64) -> Self {
        Self {
            weights: ErrorKind::ALL.iter().map(|&k| (k, 1.0)).collect(),
            attrs,
            seed,
        }
    }

    /// Applies `count` errors to `table`, returning the ground truth.
    ///
    /// # Panics
    /// Panics when no attributes are eligible, the table has fewer than two
    /// rows, or all weights are zero.
    pub fn apply(&self, table: &mut Table, count: usize) -> Vec<AppliedError> {
        assert!(!self.attrs.is_empty(), "no attributes to perturb");
        assert!(table.nrows() >= 2, "need at least two rows");
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "all error-kind weights are zero");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x94d0_49bb_1331_11eb);
        let mut out = Vec::with_capacity(count);
        let mut typo_counter = 0usize;
        for _ in 0..count {
            let kind = self.pick_kind(&mut rng, total);
            let attr = self.attrs[rng.gen_range(0..self.attrs.len())];
            let row = rng.gen_range(0..table.nrows());
            let applied = match kind {
                ErrorKind::ValueSwap => {
                    let old = table.sym(row, attr);
                    let card = table.dict_len(attr);
                    if card < 2 {
                        continue; // nothing to swap to
                    }
                    let mut alt = rng.gen_range(0..card) as u32;
                    if alt == old {
                        alt = (alt + 1) % card as u32;
                    }
                    let donor = (0..table.nrows()).find(|&r| table.sym(r, attr) == alt);
                    match donor {
                        Some(d) => {
                            let text = table.text(d, attr).to_owned();
                            table.set_text(row, attr, &text);
                            AppliedError {
                                kind,
                                cells: vec![(row, attr)],
                            }
                        }
                        None => continue,
                    }
                }
                ErrorKind::Typo => {
                    typo_counter += 1;
                    let noisy = format!("{}~{}", table.text(row, attr), typo_counter);
                    table.set_text(row, attr, &noisy);
                    AppliedError {
                        kind,
                        cells: vec![(row, attr)],
                    }
                }
                ErrorKind::Missing => {
                    table.set_text(row, attr, MISSING_MARKER);
                    AppliedError {
                        kind,
                        cells: vec![(row, attr)],
                    }
                }
                ErrorKind::Transposition => {
                    let mut other = rng.gen_range(0..table.nrows());
                    if other == row {
                        other = (other + 1) % table.nrows();
                    }
                    let a = table.text(row, attr).to_owned();
                    let b = table.text(other, attr).to_owned();
                    if a == b {
                        continue; // swap would be a no-op
                    }
                    table.set_text(row, attr, &b);
                    table.set_text(other, attr, &a);
                    AppliedError {
                        kind,
                        cells: vec![(row, attr), (other, attr)],
                    }
                }
            };
            out.push(applied);
        }
        out
    }

    fn pick_kind(&self, rng: &mut StdRng, total: f64) -> ErrorKind {
        let mut pick = rng.gen::<f64>() * total;
        for (k, w) in &self.weights {
            if pick < *w {
                return *k;
            }
            pick -= w;
        }
        // Float drift can walk `pick` past every bucket; the last kind
        // absorbs the remainder. `apply` guarantees positive total weight,
        // so an empty list is unreachable — fall back to ValueSwap rather
        // than panic.
        self.weights
            .last()
            .map_or(ErrorKind::ValueSwap, |(k, _)| *k)
    }
}

/// Collects the dirty-row flags implied by a list of applied errors.
pub fn dirty_rows_of(errors: &[AppliedError], n_rows: usize) -> Vec<bool> {
    let mut dirty = vec![false; n_rows];
    for e in errors {
        for &(row, _) in &e.cells {
            dirty[row] = true;
        }
    }
    dirty
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::omdb;

    #[test]
    fn applies_requested_count_of_errors() {
        let mut ds = omdb(150, 1);
        let gen = ErrorGenerator::uniform(vec![2, 3], 7);
        let errors = gen.apply(&mut ds.table, 40);
        // Some error attempts may be skipped (no-op swaps), but most land.
        assert!(errors.len() >= 30, "only {} errors applied", errors.len());
        let dirty = dirty_rows_of(&errors, ds.table.nrows());
        assert!(dirty.iter().filter(|&&d| d).count() > 0);
    }

    #[test]
    fn all_kinds_occur_under_uniform_weights() {
        let mut ds = omdb(200, 2);
        let gen = ErrorGenerator::uniform(vec![1, 2, 3, 4], 11);
        let errors = gen.apply(&mut ds.table, 120);
        for kind in ErrorKind::ALL {
            assert!(
                errors.iter().any(|e| e.kind == kind),
                "{} never applied",
                kind.as_str()
            );
        }
    }

    #[test]
    fn missing_blanks_the_cell() {
        let mut ds = omdb(50, 3);
        let gen = ErrorGenerator {
            weights: vec![(ErrorKind::Missing, 1.0)],
            attrs: vec![2],
            seed: 5,
        };
        let errors = gen.apply(&mut ds.table, 10);
        for e in &errors {
            assert_eq!(e.kind, ErrorKind::Missing);
            let (row, attr) = e.cells[0];
            assert_eq!(ds.table.text(row, attr), MISSING_MARKER);
        }
    }

    #[test]
    fn transposition_swaps_two_cells() {
        let mut ds = omdb(80, 4);
        let before: Vec<String> = (0..80).map(|r| ds.table.text(r, 4).to_owned()).collect();
        let gen = ErrorGenerator {
            weights: vec![(ErrorKind::Transposition, 1.0)],
            attrs: vec![4],
            seed: 9,
        };
        let errors = gen.apply(&mut ds.table, 15);
        for e in &errors {
            assert_eq!(e.cells.len(), 2);
            let (r1, a) = e.cells[0];
            let (r2, _) = e.cells[1];
            assert_ne!(r1, r2);
            let _ = a;
        }
        // The multiset of column values is preserved by transpositions.
        let mut after: Vec<String> = (0..80).map(|r| ds.table.text(r, 4).to_owned()).collect();
        let mut sorted_before = before;
        sorted_before.sort();
        after.sort();
        assert_eq!(sorted_before, after);
    }

    #[test]
    fn typo_creates_fresh_values() {
        let mut ds = omdb(60, 6);
        let card_before = ds.table.cardinality(3);
        let gen = ErrorGenerator {
            weights: vec![(ErrorKind::Typo, 1.0)],
            attrs: vec![3],
            seed: 13,
        };
        let errors = gen.apply(&mut ds.table, 10);
        assert!(!errors.is_empty());
        assert!(ds.table.cardinality(3) > card_before);
    }

    #[test]
    fn generator_is_deterministic() {
        let run = || {
            let mut ds = omdb(100, 5);
            let gen = ErrorGenerator::uniform(vec![2, 4], 21);
            let errors = gen.apply(&mut ds.table, 25);
            (errors, ds.table.row_texts(0))
        };
        let (e1, r1) = run();
        let (e2, r2) = run();
        assert_eq!(e1, e2);
        assert_eq!(r1, r2);
    }
}
