//! Per-column and per-table statistics.
//!
//! Data-estimate priors, generators and reports all need quick profiled
//! facts about a table: cardinalities, value skew, null-marker counts.

use std::collections::HashMap;

use crate::errors::MISSING_MARKER;
use crate::schema::AttrId;
use crate::table::Table;

/// Profile of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Attribute id.
    pub attr: AttrId,
    /// Distinct values in use.
    pub cardinality: usize,
    /// Rows carrying the most frequent value.
    pub top_count: usize,
    /// The most frequent value's text.
    pub top_value: String,
    /// Shannon entropy (nats) of the value distribution.
    pub entropy: f64,
    /// Rows equal to the missing marker.
    pub missing: usize,
}

impl ColumnStats {
    /// Fraction of rows carrying the most frequent value.
    pub fn top_ratio(&self, n_rows: usize) -> f64 {
        if n_rows == 0 {
            0.0
        } else {
            self.top_count as f64 / n_rows as f64
        }
    }
}

/// Profiles one column.
pub fn column_stats(table: &Table, attr: AttrId) -> ColumnStats {
    let n = table.nrows();
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for row in 0..n {
        *counts.entry(table.sym(row, attr)).or_insert(0) += 1;
    }
    let (top_sym, top_count) = counts
        .iter()
        .max_by_key(|(sym, c)| (**c, std::cmp::Reverse(**sym)))
        .map(|(s, c)| (*s, *c))
        .unwrap_or((0, 0));
    // The find only misses on an empty table, where the empty string is the
    // right profile value anyway.
    let top_value = (0..n)
        .find(|&r| table.sym(r, attr) == top_sym)
        .map(|row| table.text(row, attr).to_owned())
        .unwrap_or_default();
    let entropy = counts
        .values()
        .map(|&c| {
            let p = c as f64 / n as f64;
            -p * p.ln()
        })
        .sum();
    let missing = (0..n)
        .filter(|&r| table.text(r, attr) == MISSING_MARKER)
        .count();
    ColumnStats {
        attr,
        cardinality: counts.len(),
        top_count,
        top_value,
        entropy,
        missing,
    }
}

/// Profiles every column.
pub fn table_stats(table: &Table) -> Vec<ColumnStats> {
    (0..table.ncols())
        .map(|c| column_stats(table, c as AttrId))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::paper_table1;

    #[test]
    fn profiles_paper_table() {
        let t = paper_table1();
        let s = column_stats(&t, 1); // Team
        assert_eq!(s.cardinality, 3);
        assert_eq!(s.top_count, 2); // Lakers or Bulls (tie -> deterministic pick)
        assert!(["Lakers", "Bulls"].contains(&s.top_value.as_str()));
        assert!(s.entropy > 0.0);
        assert_eq!(s.missing, 0);
        assert!((s.top_ratio(t.nrows()) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn constant_column_has_zero_entropy() {
        let mut b = Table::builder(crate::Schema::new(["k", "v"]));
        for i in 0..6 {
            b.push_row(&[format!("k{i}"), "same".to_owned()]);
        }
        let t = b.finish();
        let s = column_stats(&t, 1);
        assert_eq!(s.cardinality, 1);
        assert_eq!(s.entropy, 0.0);
        assert_eq!(s.top_count, 6);
        // Key column: maximal entropy ln(6).
        let k = column_stats(&t, 0);
        assert!((k.entropy - 6.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn missing_marker_counted() {
        let mut t = paper_table1();
        t.set_text(0, 2, crate::errors::MISSING_MARKER);
        let s = column_stats(&t, 2);
        assert_eq!(s.missing, 1);
    }

    #[test]
    fn table_stats_covers_all_columns() {
        let t = paper_table1();
        let all = table_stats(&t);
        assert_eq!(all.len(), 5);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(s.attr as usize, i);
        }
    }
}
