//! Column-major, dictionary-encoded tables.
//!
//! FD evaluation only ever asks "are these two cells equal?", so cells are
//! interned per column and compared as `u32` symbols. This keeps the
//! pair-heavy computations (g1, violation indexing, error injection) cheap
//! and allocation-free on the hot path, per the workspace performance notes.

use std::collections::HashMap;
use std::fmt;

use crate::schema::{AttrId, Schema};

/// One dictionary-encoded column.
#[derive(Debug, Clone, Default)]
struct Column {
    /// Symbol id -> original text.
    dict: Vec<String>,
    /// Original text -> symbol id.
    lookup: HashMap<String, u32>,
    /// One symbol per row.
    data: Vec<u32>,
}

impl Column {
    fn intern(&mut self, text: &str) -> u32 {
        if let Some(&s) = self.lookup.get(text) {
            return s;
        }
        let s = self.dict.len() as u32;
        self.dict.push(text.to_owned());
        self.lookup.insert(text.to_owned(), s);
        s
    }
}

/// An immutable-schema relational table with mutable cells.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    cols: Vec<Column>,
    nrows: usize,
}

impl Table {
    /// Starts building a table for `schema`.
    pub fn builder(schema: Schema) -> TableBuilder {
        let ncols = schema.len();
        TableBuilder {
            table: Table {
                schema,
                cols: vec![Column::default(); ncols],
                nrows: 0,
            },
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// The interned symbol at (`row`, `attr`). Symbols are only comparable
    /// within the same column.
    #[inline]
    pub fn sym(&self, row: usize, attr: AttrId) -> u32 {
        self.cols[attr as usize].data[row]
    }

    /// The original text at (`row`, `attr`).
    pub fn text(&self, row: usize, attr: AttrId) -> &str {
        let col = &self.cols[attr as usize];
        &col.dict[col.data[row] as usize]
    }

    /// Overwrites a cell with new text, interning as needed.
    pub fn set_text(&mut self, row: usize, attr: AttrId, text: &str) {
        let col = &mut self.cols[attr as usize];
        let s = col.intern(text);
        col.data[row] = s;
    }

    /// Number of distinct values currently interned in `attr`'s dictionary.
    ///
    /// This is an upper bound on the number of distinct values *in use*
    /// (cells may have been overwritten away from a symbol).
    pub fn dict_len(&self, attr: AttrId) -> usize {
        self.cols[attr as usize].dict.len()
    }

    /// Number of distinct values actually present in column `attr`.
    pub fn cardinality(&self, attr: AttrId) -> usize {
        let col = &self.cols[attr as usize];
        let mut seen = vec![false; col.dict.len()];
        let mut n = 0;
        for &s in &col.data {
            if !seen[s as usize] {
                seen[s as usize] = true;
                n += 1;
            }
        }
        n
    }

    /// True when rows `a` and `b` agree on every attribute in `attrs`.
    #[inline]
    pub fn rows_agree_on(&self, a: usize, b: usize, attrs: &[AttrId]) -> bool {
        attrs.iter().all(|&at| self.sym(a, at) == self.sym(b, at))
    }

    /// The row as owned strings (diagnostics, CSV export).
    pub fn row_texts(&self, row: usize) -> Vec<String> {
        (0..self.ncols())
            .map(|c| self.text(row, c as AttrId).to_owned())
            .collect()
    }

    /// A new table containing only `rows` (in the given order), re-interned.
    pub fn subset(&self, rows: &[usize]) -> Table {
        let mut b = Table::builder(self.schema.clone());
        for &r in rows {
            let row: Vec<&str> = (0..self.ncols())
                .map(|c| self.text(r, c as AttrId))
                .collect();
            b.push_row(&row);
        }
        b.finish()
    }

    /// Returns, for every row, the *group key* obtained by projecting the row
    /// onto `attrs`; rows with equal keys agree on `attrs`.
    ///
    /// Group ids are dense in `0..n_groups`.
    pub fn group_by(&self, attrs: &[AttrId]) -> GroupedRows {
        let mut key_ids: HashMap<Vec<u32>, u32> = HashMap::new();
        let mut row_group = Vec::with_capacity(self.nrows);
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut key = Vec::with_capacity(attrs.len());
        for row in 0..self.nrows {
            key.clear();
            key.extend(attrs.iter().map(|&a| self.sym(row, a)));
            let next = key_ids.len() as u32;
            let gid = *key_ids.entry(key.clone()).or_insert(next);
            if gid as usize == groups.len() {
                groups.push(Vec::new());
            }
            groups[gid as usize].push(row as u32);
            row_group.push(gid);
        }
        GroupedRows { row_group, groups }
    }
}

/// Result of [`Table::group_by`]: a partition of rows by projected key.
#[derive(Debug, Clone)]
pub struct GroupedRows {
    /// For every row, the id of its group.
    pub row_group: Vec<u32>,
    /// For every group id, the member rows.
    pub groups: Vec<Vec<u32>>,
}

impl GroupedRows {
    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when there are no groups (empty table).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

/// Incremental row-wise construction of a [`Table`].
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Appends a row of cell texts.
    ///
    /// # Panics
    /// Panics when the row arity does not match the schema.
    pub fn push_row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(
            cells.len(),
            self.table.ncols(),
            "row arity {} != schema arity {}",
            cells.len(),
            self.table.ncols()
        );
        for (c, cell) in cells.iter().enumerate() {
            let sym = self.table.cols[c].intern(cell.as_ref());
            self.table.cols[c].data.push(sym);
        }
        self.table.nrows += 1;
    }

    /// Finalises the table.
    pub fn finish(self) -> Table {
        self.table
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        let limit = 20.min(self.nrows);
        for row in 0..limit {
            writeln!(f, "{}", self.row_texts(row).join(" | "))?;
        }
        if self.nrows > limit {
            writeln!(f, "... ({} rows total)", self.nrows)?;
        }
        Ok(())
    }
}

/// Builds the paper's Table 1 sample instance (Player/Team/City/Role/Apps).
///
/// Used across the workspace by doc examples and tests that check the g1
/// semantics of the paper's Example 1.
pub fn paper_table1() -> Table {
    let schema = Schema::new(["Player", "Team", "City", "Role", "Apps"]);
    let mut b = Table::builder(schema);
    b.push_row(&["Carter", "Lakers", "L.A.", "C", "4"]);
    b.push_row(&["Jordan", "Lakers", "Chicago", "PF", "4"]);
    b.push_row(&["Smith", "Bulls", "Chicago", "PF", "4"]);
    b.push_row(&["Black", "Bulls", "Chicago", "C", "3"]);
    b.push_row(&["Miller", "Clippers", "L.A.", "PG", "3"]);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_read_back() {
        let t = paper_table1();
        assert_eq!(t.nrows(), 5);
        assert_eq!(t.ncols(), 5);
        assert_eq!(t.text(0, 1), "Lakers");
        assert_eq!(t.text(4, 2), "L.A.");
        // t1 and t2 share a Team symbol but not a City symbol.
        assert_eq!(t.sym(0, 1), t.sym(1, 1));
        assert_ne!(t.sym(0, 2), t.sym(1, 2));
    }

    #[test]
    fn set_text_changes_equality() {
        let mut t = paper_table1();
        assert!(!t.rows_agree_on(0, 1, &[2]));
        t.set_text(0, 2, "Chicago");
        assert!(t.rows_agree_on(0, 1, &[2]));
    }

    #[test]
    fn cardinality_counts_live_values() {
        let mut t = paper_table1();
        assert_eq!(t.cardinality(1), 3); // Lakers, Bulls, Clippers
        t.set_text(4, 1, "Lakers"); // Clippers no longer used
        assert_eq!(t.cardinality(1), 2);
        assert_eq!(t.dict_len(1), 3); // dictionary keeps the dead entry
    }

    #[test]
    fn group_by_partitions_rows() {
        let t = paper_table1();
        let g = t.group_by(&[1]); // by Team
        assert_eq!(g.len(), 3);
        assert_eq!(g.row_group[0], g.row_group[1]); // both Lakers
        assert_ne!(g.row_group[0], g.row_group[2]);
        let lakers = &g.groups[g.row_group[0] as usize];
        assert_eq!(lakers.as_slice(), &[0, 1]);
    }

    #[test]
    fn group_by_multi_attr() {
        let t = paper_table1();
        let g = t.group_by(&[2, 3]); // City, Role
                                     // (Chicago, PF) groups rows 1 and 2 together.
        assert_eq!(g.row_group[1], g.row_group[2]);
        assert_ne!(g.row_group[0], g.row_group[1]);
    }

    #[test]
    fn subset_preserves_texts() {
        let t = paper_table1();
        let s = t.subset(&[4, 0]);
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.text(0, 0), "Miller");
        assert_eq!(s.text(1, 0), "Carter");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut b = Table::builder(Schema::new(["a", "b"]));
        b.push_row(&["only-one"]);
    }
}
