//! BART-style error injection (Arocena et al., PVLDB 2015).
//!
//! The paper introduces violations "with an error generation tool that
//! scrambles values w.r.t. the target FD", controlling both the overall
//! *degree of violation* (the fraction of tuple pairs that violate some FD —
//! the empirical study sweeps ≈5%…≈25% and up to 35%) and the *violation
//! ratio* between target and alternative FDs (the user study uses 1/3 and
//! 2/3).
//!
//! **Degree semantics.** Only pairs that agree on some FD's left-hand side
//! can violate that FD, so we define the degree of violation as
//!
//! ```text
//! degree = |pairs violating ≥ 1 FD| / |pairs agreeing on ≥ 1 FD's LHS|
//! ```
//!
//! i.e. relative to the pairs *at risk*. (Relative to all `C(n,2)` pairs the
//! paper's 25–35% degrees would be unreachable on realistic group
//! structures.) [`absolute_violation_degree`] provides the `C(n,2)`
//! denominator for diagnostics.
//!
//! [`inject_errors`] perturbs right-hand-side cells of randomly chosen
//! tuples inside left-hand-side groups until the requested degree is
//! reached, recording ground-truth dirty rows and cells for later F1
//! evaluation.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::AttrId;
use crate::table::Table;
use crate::FdSpec;

/// Configuration for [`inject_errors`].
#[derive(Debug, Clone)]
pub struct InjectConfig {
    /// Requested degree of violation: the fraction of *at-risk* tuple pairs
    /// (pairs agreeing on some FD's LHS) violating at least one FD.
    pub degree: f64,
    /// Relative frequency with which *target* FDs are perturbed.
    pub target_weight: f64,
    /// Relative frequency with which *alternative* FDs are perturbed. The
    /// paper's "violation ratio m/n" maps to `target_weight = m`,
    /// `alt_weight = n`.
    pub alt_weight: f64,
    /// Probability that a scrambled cell receives a brand-new noise value
    /// rather than another existing value of the column.
    pub fresh_value_prob: f64,
    /// Hard cap on cell edits (safety against unreachable degrees).
    pub max_edits: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InjectConfig {
    fn default() -> Self {
        Self {
            degree: 0.10,
            target_weight: 1.0,
            alt_weight: 1.0,
            fresh_value_prob: 0.5,
            max_edits: 20_000,
            seed: 0,
        }
    }
}

impl InjectConfig {
    /// Convenience constructor for a degree with default ratios.
    pub fn with_degree(degree: f64, seed: u64) -> Self {
        Self {
            degree,
            seed,
            ..Self::default()
        }
    }

    /// Sets the paper's violation ratio `m/n` (target violations per
    /// alternative violation).
    pub fn with_ratio(mut self, target: f64, alt: f64) -> Self {
        self.target_weight = target;
        self.alt_weight = alt;
        self
    }
}

/// Ground truth produced by [`inject_errors`].
#[derive(Debug, Clone)]
pub struct Injection {
    /// For every row, whether any of its cells were scrambled.
    pub dirty_rows: Vec<bool>,
    /// Every scrambled cell (row, attribute), deduplicated and sorted.
    pub dirty_cells: Vec<(usize, AttrId)>,
    /// Number of cell edits performed.
    pub edits: usize,
    /// The violation degree actually achieved.
    pub achieved_degree: f64,
}

impl Injection {
    /// Number of dirty rows.
    pub fn dirty_row_count(&self) -> usize {
        self.dirty_rows.iter().filter(|&&d| d).count()
    }
}

/// Violating and at-risk pair counts for a set of FDs over a table.
#[derive(Debug, Clone, Default)]
pub struct PairCounts {
    /// Unordered pairs violating at least one FD.
    pub violating: usize,
    /// Unordered pairs agreeing on at least one FD's LHS.
    pub at_risk: usize,
}

impl PairCounts {
    /// The degree of violation (0 when nothing is at risk).
    pub fn degree(&self) -> f64 {
        if self.at_risk == 0 {
            0.0
        } else {
            self.violating as f64 / self.at_risk as f64
        }
    }
}

/// Computes violating / at-risk pair counts over the union of `fds`.
pub fn pair_counts(table: &Table, fds: &[FdSpec]) -> PairCounts {
    let mut violating: HashSet<(u32, u32)> = HashSet::new();
    let mut at_risk: HashSet<(u32, u32)> = HashSet::new();
    for fd in fds {
        let lhs: Vec<AttrId> = fd.lhs.iter().map(|&a| a as AttrId).collect();
        let rhs = fd.rhs as AttrId;
        let grouped = table.group_by(&lhs);
        for group in &grouped.groups {
            if group.len() < 2 {
                continue;
            }
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    let key = (a.min(b), a.max(b));
                    at_risk.insert(key);
                    if table.sym(a as usize, rhs) != table.sym(b as usize, rhs) {
                        violating.insert(key);
                    }
                }
            }
        }
    }
    PairCounts {
        violating: violating.len(),
        at_risk: at_risk.len(),
    }
}

/// The degree of violation of `fds` over `table`: violating pairs as a
/// fraction of at-risk pairs (pairs agreeing on some FD's LHS).
pub fn violation_degree(table: &Table, fds: &[FdSpec]) -> f64 {
    pair_counts(table, fds).degree()
}

/// Violating pairs as a fraction of *all* `C(n,2)` pairs (diagnostics).
pub fn absolute_violation_degree(table: &Table, fds: &[FdSpec]) -> f64 {
    let n = table.nrows();
    if n < 2 {
        return 0.0;
    }
    let total = n as f64 * (n as f64 - 1.0) / 2.0;
    pair_counts(table, fds).violating as f64 / total
}

/// All unordered pairs `(a, b)` with `a < b` violating at least one FD.
pub fn violating_pairs(table: &Table, fds: &[FdSpec]) -> HashSet<(u32, u32)> {
    let mut out = HashSet::new();
    for fd in fds {
        let lhs: Vec<AttrId> = fd.lhs.iter().map(|&a| a as AttrId).collect();
        let rhs = fd.rhs as AttrId;
        let grouped = table.group_by(&lhs);
        for group in &grouped.groups {
            for (i, &a) in group.iter().enumerate() {
                for &b in &group[i + 1..] {
                    if table.sym(a as usize, rhs) != table.sym(b as usize, rhs) {
                        out.insert((a.min(b), a.max(b)));
                    }
                }
            }
        }
    }
    out
}

/// Scrambles RHS cells of `table` until the violation degree over
/// `targets ∪ alts` reaches `cfg.degree` (or `cfg.max_edits` is hit).
///
/// Edits pick an FD (targets weighted by `target_weight`, alternatives by
/// `alt_weight`), pick a clean row inside one of that FD's multi-row LHS
/// groups, and overwrite the RHS cell with a different value. Returns the
/// dirty-row / dirty-cell ground truth.
///
/// # Panics
/// Panics when `cfg.degree` is outside `[0, 1)`, when no FDs are given, or
/// when every FD weight is zero.
pub fn inject_errors(
    table: &mut Table,
    targets: &[FdSpec],
    alts: &[FdSpec],
    cfg: &InjectConfig,
) -> Injection {
    assert!(
        (0.0..1.0).contains(&cfg.degree),
        "degree must be in [0, 1), got {}",
        cfg.degree
    );
    assert!(!targets.is_empty() || !alts.is_empty(), "no FDs to violate");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xc2b2_ae3d_27d4_eb4f);
    let n = table.nrows();
    let all_fds: Vec<FdSpec> = targets.iter().chain(alts.iter()).cloned().collect();
    let weights: Vec<f64> = targets
        .iter()
        .map(|_| cfg.target_weight)
        .chain(alts.iter().map(|_| cfg.alt_weight))
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    assert!(weight_sum > 0.0, "at least one FD weight must be positive");

    let mut dirty_rows = vec![false; n];
    let mut dirty_cells: HashSet<(usize, AttrId)> = HashSet::new();
    let mut edits = 0usize;
    let mut noise_counter = 0usize;

    let mut counts = pair_counts(table, &all_fds);
    let mut achieved = counts.degree();
    while achieved < cfg.degree && edits < cfg.max_edits {
        // Recomputing exact counts per edit is O(at-risk pairs); batch a few
        // edits when far from the target, single-step when close.
        let deficit_pairs = (cfg.degree - achieved) * counts.at_risk.max(1) as f64;
        let batch = ((deficit_pairs / (n as f64 * 0.2)).ceil() as usize).clamp(1, 32);
        let mut made_progress = false;
        for _ in 0..batch {
            if edits >= cfg.max_edits {
                break;
            }
            // Weighted FD choice.
            let mut pick = rng.gen::<f64>() * weight_sum;
            let mut fd = &all_fds[0];
            for (i, w) in weights.iter().enumerate() {
                if pick < *w {
                    fd = &all_fds[i];
                    break;
                }
                pick -= w;
            }
            let lhs: Vec<AttrId> = fd.lhs.iter().map(|&a| a as AttrId).collect();
            let rhs = fd.rhs as AttrId;
            let grouped = table.group_by(&lhs);
            let multi: Vec<&Vec<u32>> = grouped.groups.iter().filter(|g| g.len() >= 2).collect();
            if multi.is_empty() {
                continue;
            }
            // Weight groups by size so big groups absorb proportionally more
            // errors (as BART does).
            let total_rows: usize = multi.iter().map(|g| g.len()).sum();
            let mut pick_row = rng.gen_range(0..total_rows);
            let mut chosen_group = multi[0];
            for g in &multi {
                if pick_row < g.len() {
                    chosen_group = g;
                    break;
                }
                pick_row -= g.len();
            }
            // Prefer rows not yet dirtied so errors spread instead of
            // churning the same cells.
            let clean_members: Vec<u32> = chosen_group
                .iter()
                .copied()
                .filter(|&r| !dirty_rows[r as usize])
                .collect();
            let row = if clean_members.is_empty() {
                chosen_group[rng.gen_range(0..chosen_group.len())] as usize
            } else {
                clean_members[rng.gen_range(0..clean_members.len())] as usize
            };
            let old = table.sym(row, rhs);
            let new_text = if rng.gen::<f64>() < cfg.fresh_value_prob {
                noise_counter += 1;
                format!("~noise_{noise_counter}")
            } else {
                existing_other_value(table, rhs, old, &mut rng).unwrap_or_else(|| {
                    noise_counter += 1;
                    format!("~noise_{noise_counter}")
                })
            };
            table.set_text(row, rhs, &new_text);
            dirty_rows[row] = true;
            dirty_cells.insert((row, rhs));
            edits += 1;
            made_progress = true;
        }
        if !made_progress {
            break; // no multi-row groups left to perturb
        }
        counts = pair_counts(table, &all_fds);
        achieved = counts.degree();
    }

    let mut cells: Vec<(usize, AttrId)> = dirty_cells.into_iter().collect();
    cells.sort_unstable();
    Injection {
        dirty_rows,
        dirty_cells: cells,
        edits,
        achieved_degree: achieved,
    }
}

/// Picks the text of an existing symbol of column `attr` different from
/// `old`, if the column has one.
fn existing_other_value(table: &Table, attr: AttrId, old: u32, rng: &mut StdRng) -> Option<String> {
    let card = table.dict_len(attr);
    if card < 2 {
        return None;
    }
    let mut alt_sym = rng.gen_range(0..card) as u32;
    if alt_sym == old {
        alt_sym = (alt_sym + 1) % card as u32;
    }
    (0..table.nrows())
        .find(|&r| table.sym(r, attr) == alt_sym)
        .map(|r| table.text(r, attr).to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::omdb;
    use crate::table::paper_table1;

    #[test]
    fn paper_example_pairs() {
        // Table 1 with Team -> City: only (t1, t2) violates. At-risk pairs:
        // Lakers {t1,t2} and Bulls {t3,t4} -> 2 pairs; degree = 1/2.
        let t = paper_table1();
        let fd = FdSpec::new(vec![1], 2);
        let pairs = violating_pairs(&t, std::slice::from_ref(&fd));
        assert_eq!(pairs.len(), 1);
        assert!(pairs.contains(&(0, 1)));
        let counts = pair_counts(&t, std::slice::from_ref(&fd));
        assert_eq!(counts.at_risk, 2);
        assert_eq!(counts.violating, 1);
        assert!((violation_degree(&t, std::slice::from_ref(&fd)) - 0.5).abs() < 1e-12);
        // Absolute variant: 1 violating pair over C(5,2)=10.
        assert!((absolute_violation_degree(&t, &[fd]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn clean_data_has_zero_degree() {
        let ds = omdb(200, 1);
        assert_eq!(violation_degree(&ds.table, &ds.exact_fds), 0.0);
    }

    #[test]
    fn injection_reaches_requested_degree() {
        let mut ds = omdb(250, 2);
        let cfg = InjectConfig::with_degree(0.10, 7);
        let inj = inject_errors(&mut ds.table, &ds.exact_fds, &[], &cfg);
        assert!(
            inj.achieved_degree >= 0.10,
            "achieved {}",
            inj.achieved_degree
        );
        assert!(
            inj.achieved_degree < 0.20,
            "overshot: {}",
            inj.achieved_degree
        );
        assert!(inj.dirty_row_count() > 0);
        assert_eq!(
            violation_degree(&ds.table, &ds.exact_fds),
            inj.achieved_degree
        );
    }

    #[test]
    fn high_degrees_reachable() {
        let mut ds = omdb(200, 4);
        let cfg = InjectConfig::with_degree(0.30, 11);
        let inj = inject_errors(&mut ds.table, &ds.exact_fds, &[], &cfg);
        assert!(
            inj.achieved_degree >= 0.30,
            "achieved {}",
            inj.achieved_degree
        );
    }

    #[test]
    fn dirty_ground_truth_matches_edits() {
        let mut ds = omdb(150, 3);
        let cfg = InjectConfig::with_degree(0.05, 9);
        let inj = inject_errors(&mut ds.table, &ds.exact_fds, &[], &cfg);
        assert!(inj.edits >= inj.dirty_cells.len());
        for &(row, _) in &inj.dirty_cells {
            assert!(inj.dirty_rows[row]);
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let run = |seed| {
            let mut ds = omdb(120, 4);
            let cfg = InjectConfig::with_degree(0.08, seed);
            let inj = inject_errors(&mut ds.table, &ds.exact_fds, &[], &cfg);
            (inj.dirty_cells.clone(), inj.achieved_degree)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0);
    }

    #[test]
    fn ratio_skews_violations_toward_targets() {
        let mut ds = omdb(300, 8);
        let fds = ds.exact_fds.clone();
        let (target, alts) = fds.split_first().unwrap();
        let cfg = InjectConfig::with_degree(0.12, 3).with_ratio(3.0, 1.0);
        let _ = inject_errors(&mut ds.table, std::slice::from_ref(target), alts, &cfg);
        let t_deg = violation_degree(&ds.table, std::slice::from_ref(target));
        let per_alt: Vec<f64> = alts
            .iter()
            .map(|f| violation_degree(&ds.table, std::slice::from_ref(f)))
            .collect();
        let max_alt = per_alt.iter().cloned().fold(0.0, f64::max);
        assert!(
            t_deg > max_alt * 0.8,
            "target degree {t_deg} vs alternatives {per_alt:?}"
        );
    }

    #[test]
    fn zero_degree_request_is_noop() {
        let mut ds = omdb(100, 1);
        let before = ds.table.clone();
        let cfg = InjectConfig::with_degree(0.0, 1);
        let inj = inject_errors(&mut ds.table, &ds.exact_fds, &[], &cfg);
        assert_eq!(inj.edits, 0);
        for r in 0..before.nrows() {
            assert_eq!(before.row_texts(r), ds.table.row_texts(r));
        }
    }

    #[test]
    fn pair_counts_degree_handles_empty() {
        assert_eq!(PairCounts::default().degree(), 0.0);
    }
}
