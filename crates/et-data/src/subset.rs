//! Violation-degree subset selection.
//!
//! The paper's empirical study controls violation degrees by *sampling*:
//! "for every dataset, we identify a subset of the tuples so that the
//! fraction of tuple pairs that are violations of the FDs in this sampled
//! dataset is equal to the desired degrees of violations" (§C.1). This
//! module implements that selection: greedy growth from a clean core,
//! admitting violation-carrying rows until the requested degree is met.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::inject::violation_degree;
use crate::table::Table;
use crate::FdSpec;

/// Result of [`select_subset_with_degree`].
#[derive(Debug, Clone)]
pub struct SubsetSelection {
    /// Chosen row indices (sorted).
    pub rows: Vec<usize>,
    /// The violation degree of the selected subset.
    pub achieved_degree: f64,
}

/// Selects about `target_rows` rows of `table` whose violation degree over
/// `fds` approximates `degree`.
///
/// Strategy: shuffle rows deterministically, then grow the subset row by
/// row, preferring rows that keep the running degree close to the target
/// (evaluated on a per-chunk basis to bound cost). Exact degrees are not
/// always attainable; the achieved value is returned.
///
/// # Panics
/// Panics when `target_rows < 10` or exceeds the table size.
pub fn select_subset_with_degree(
    table: &Table,
    fds: &[FdSpec],
    degree: f64,
    target_rows: usize,
    seed: u64,
) -> SubsetSelection {
    assert!(target_rows >= 10, "subset too small to be meaningful");
    assert!(
        target_rows <= table.nrows(),
        "target_rows {} exceeds table size {}",
        target_rows,
        table.nrows()
    );
    assert!((0.0..1.0).contains(&degree), "degree must be in [0, 1)");

    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03);
    let mut order: Vec<usize> = (0..table.nrows()).collect();
    order.shuffle(&mut rng);

    // Seed the subset with a few rows, then grow greedily in chunks: at
    // each step, try the next few candidates and keep the one that moves
    // the degree toward the target.
    let mut chosen: Vec<usize> = order[..10.min(order.len())].to_vec();
    let mut pool: Vec<usize> = order[10.min(order.len())..].to_vec();

    while chosen.len() < target_rows && !pool.is_empty() {
        let current = subset_degree(table, fds, &chosen);
        let lookahead = 10.min(pool.len());
        let mut best: Option<(usize, f64)> = None; // (pool idx, |gap|)
        for (pi, &cand) in pool.iter().take(lookahead).enumerate() {
            chosen.push(cand);
            let d = subset_degree(table, fds, &chosen);
            chosen.pop();
            let gap = (d - degree).abs();
            if best.is_none_or(|(_, g)| gap < g) {
                best = Some((pi, gap));
            }
        }
        // `pool` is non-empty here so the lookahead saw at least one
        // candidate; bail out of the growth loop rather than panic if not.
        let Some((pi, best_gap)) = best else { break };
        // If every candidate moves us further from the target than we are,
        // still take the best one (we must reach target_rows), unless we
        // are already close and adding only hurts.
        let current_gap = (current - degree).abs();
        if chosen.len() >= target_rows.saturating_sub(target_rows / 10) && best_gap > current_gap {
            break;
        }
        let cand = pool.remove(pi);
        chosen.push(cand);
    }

    chosen.sort_unstable();
    let achieved = subset_degree(table, fds, &chosen);
    SubsetSelection {
        rows: chosen,
        achieved_degree: achieved,
    }
}

fn subset_degree(table: &Table, fds: &[FdSpec], rows: &[usize]) -> f64 {
    if rows.len() < 2 {
        return 0.0;
    }
    let sub = table.subset(rows);
    violation_degree(&sub, fds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::omdb;
    use crate::{inject_errors, InjectConfig};

    fn dirty_omdb(rows: usize, degree: f64) -> (Table, Vec<FdSpec>) {
        let mut ds = omdb(rows, 3);
        let fds = ds.exact_fds.clone();
        let _ = inject_errors(
            &mut ds.table,
            &fds,
            &[],
            &InjectConfig::with_degree(degree, 5),
        );
        (ds.table, fds)
    }

    #[test]
    fn hits_a_lower_degree_than_the_source() {
        // Source has ~30% violations; ask for a 10% subset.
        let (table, fds) = dirty_omdb(250, 0.30);
        let sel = select_subset_with_degree(&table, &fds, 0.10, 120, 1);
        assert!(sel.rows.len() >= 60, "kept {} rows", sel.rows.len());
        assert!(
            (sel.achieved_degree - 0.10).abs() < 0.08,
            "achieved {:.3}",
            sel.achieved_degree
        );
    }

    #[test]
    fn hits_a_higher_degree_by_concentrating_violations() {
        // Source has ~10%; ask for 20%.
        let (table, fds) = dirty_omdb(250, 0.10);
        let sel = select_subset_with_degree(&table, &fds, 0.20, 100, 2);
        assert!(
            sel.achieved_degree > 0.12,
            "achieved {:.3}",
            sel.achieved_degree
        );
    }

    #[test]
    fn selection_is_deterministic_and_sorted() {
        let (table, fds) = dirty_omdb(150, 0.15);
        let a = select_subset_with_degree(&table, &fds, 0.10, 80, 9);
        let b = select_subset_with_degree(&table, &fds, 0.10, 80, 9);
        assert_eq!(a.rows, b.rows);
        let mut sorted = a.rows.clone();
        sorted.sort_unstable();
        assert_eq!(a.rows, sorted);
    }

    #[test]
    fn rows_are_valid_and_unique() {
        let (table, fds) = dirty_omdb(150, 0.15);
        let sel = select_subset_with_degree(&table, &fds, 0.12, 90, 4);
        let mut seen = std::collections::HashSet::new();
        for &r in &sel.rows {
            assert!(r < table.nrows());
            assert!(seen.insert(r), "duplicate row {r}");
        }
    }
}
