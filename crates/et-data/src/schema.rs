//! Relation schemas: ordered attribute names with id-based access.

use std::fmt;

/// Index of an attribute within a [`Schema`].
///
/// `u16` keeps FD representations compact; the paper's widest dataset
/// (Hospital) has 19 attributes, far below the limit.
pub type AttrId = u16;

/// An ordered list of attribute names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<String>,
}

impl Schema {
    /// Creates a schema from attribute names.
    ///
    /// # Panics
    /// Panics if names are empty or duplicated — FD semantics over ambiguous
    /// attribute names would be meaningless.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let attrs: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!attrs.is_empty(), "schema needs at least one attribute");
        for (i, a) in attrs.iter().enumerate() {
            assert!(
                !attrs[..i].contains(a),
                "duplicate attribute name `{a}` in schema"
            );
        }
        Self { attrs }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when the schema has no attributes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The name of attribute `id`.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn name(&self, id: AttrId) -> &str {
        &self.attrs[id as usize]
    }

    /// Looks up an attribute id by name.
    pub fn id_of(&self, name: &str) -> Option<AttrId> {
        self.attrs
            .iter()
            .position(|a| a == name)
            .map(|i| i as AttrId)
    }

    /// Iterates over `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, s)| (i as AttrId, s.as_str()))
    }

    /// All attribute names in order.
    pub fn names(&self) -> &[String] {
        &self.attrs
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.attrs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_roundtrip() {
        let s = Schema::new(["Player", "Team", "City"]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.name(1), "Team");
        assert_eq!(s.id_of("City"), Some(2));
        assert_eq!(s.id_of("Nope"), None);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let s = Schema::new(["a", "b"]);
        let v: Vec<(AttrId, &str)> = s.iter().collect();
        assert_eq!(v, vec![(0, "a"), (1, "b")]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let _ = Schema::new(["x", "x"]);
    }

    #[test]
    fn display_formats_names() {
        let s = Schema::new(["a", "b"]);
        assert_eq!(s.to_string(), "(a, b)");
    }
}
