//! A minimal CSV reader/writer (RFC-4180 quoting), dependency-free.
//!
//! The experiment harness dumps every regenerated table/figure as CSV so the
//! results can be diffed and plotted; the same code loads user-provided
//! datasets should someone substitute the real OMDB/Hospital files.

use std::fmt::Write as _;
use std::path::Path;

use crate::schema::Schema;
use crate::table::Table;

/// Errors raised while parsing CSV text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header row.
    MissingHeader,
    /// A record's field count differs from the header's.
    RaggedRow {
        /// 1-based line of the offending record.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected (header arity).
        want: usize,
    },
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line where the quote opened.
        line: usize,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header row"),
            CsvError::RaggedRow { line, got, want } => {
                write!(f, "line {line}: {got} fields, expected {want}")
            }
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text (header + records) into a [`Table`].
pub fn parse(input: &str) -> Result<Table, CsvError> {
    let mut records = parse_records(input)?;
    if records.is_empty() {
        return Err(CsvError::MissingHeader);
    }
    let header = records.remove(0);
    let want = header.len();
    let schema = Schema::new(header);
    let mut b = Table::builder(schema);
    for (i, rec) in records.into_iter().enumerate() {
        if rec.len() != want {
            return Err(CsvError::RaggedRow {
                line: i + 2,
                got: rec.len(),
                want,
            });
        }
        b.push_row(&rec);
    }
    Ok(b.finish())
}

/// Splits CSV text into records of fields, honouring quoted fields with
/// embedded commas, newlines, and doubled quotes.
fn parse_records(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut quote_line = 1usize;
    let mut line = 1usize;
    let mut saw_any = false;

    while let Some(c) = chars.next() {
        saw_any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                quote_line = line;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
            }
            '\r' => { /* swallow; \n terminates */ }
            '\n' => {
                line += 1;
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: quote_line });
    }
    if saw_any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Loads a table from a CSV file.
///
/// I/O failures and parse failures are both surfaced; the parse error keeps
/// its line information.
pub fn load_table<P: AsRef<Path>>(path: P) -> Result<Table, LoadError> {
    let text = std::fs::read_to_string(path.as_ref()).map_err(LoadError::Io)?;
    parse(&text).map_err(LoadError::Csv)
}

/// Writes a table to a CSV file.
pub fn save_table<P: AsRef<Path>>(path: P, table: &Table) -> std::io::Result<()> {
    std::fs::write(path, write(table))
}

/// Errors raised by [`load_table`].
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The contents failed to parse.
    Csv(CsvError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io: {e}"),
            LoadError::Csv(e) => write!(f, "csv: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Serialises a [`Table`] (header + all rows) to CSV text.
pub fn write(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<&str> = table.schema().names().iter().map(|s| s.as_str()).collect();
    write_record(&mut out, &names);
    for row in 0..table.nrows() {
        let cells = table.row_texts(row);
        let refs: Vec<&str> = cells.iter().map(|s| s.as_str()).collect();
        write_record(&mut out, &refs);
    }
    out
}

fn write_record(out: &mut String, fields: &[&str]) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if f.contains(',') || f.contains('"') || f.contains('\n') {
            let escaped = f.replace('"', "\"\"");
            let _ = write!(out, "\"{escaped}\"");
        } else {
            out.push_str(f);
        }
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::paper_table1;

    #[test]
    fn roundtrip_simple() -> Result<(), CsvError> {
        let t = paper_table1();
        let csv = write(&t);
        let t2 = parse(&csv)?;
        assert_eq!(t2.nrows(), t.nrows());
        for r in 0..t.nrows() {
            assert_eq!(t.row_texts(r), t2.row_texts(r));
        }
        Ok(())
    }

    #[test]
    fn quoted_fields_roundtrip() -> Result<(), CsvError> {
        let csv = "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n\"multi\nline\",plain\n";
        let t = parse(csv)?;
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.text(0, 0), "x,y");
        assert_eq!(t.text(0, 1), "he said \"hi\"");
        assert_eq!(t.text(1, 0), "multi\nline");
        let again = parse(&write(&t))?;
        assert_eq!(again.text(1, 0), "multi\nline");
        Ok(())
    }

    #[test]
    fn crlf_accepted() -> Result<(), CsvError> {
        let t = parse("a,b\r\n1,2\r\n")?;
        assert_eq!(t.nrows(), 1);
        assert_eq!(t.text(0, 1), "2");
        Ok(())
    }

    #[test]
    fn missing_final_newline_ok() -> Result<(), CsvError> {
        let t = parse("a,b\n1,2")?;
        assert_eq!(t.nrows(), 1);
        Ok(())
    }

    #[test]
    fn ragged_row_reported() {
        let err = parse("a,b\n1\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRow {
                line: 2,
                got: 1,
                want: 2
            }
        );
    }

    #[test]
    fn unterminated_quote_reported() {
        let err = parse("a,b\n\"oops,2\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { .. }));
    }

    #[test]
    fn empty_input_is_missing_header() {
        assert_eq!(parse("").unwrap_err(), CsvError::MissingHeader);
    }

    #[test]
    fn file_roundtrip() -> Result<(), Box<dyn std::error::Error>> {
        let t = paper_table1();
        let dir = std::env::temp_dir().join("et-data-csv-test");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("table1.csv");
        save_table(&path, &t)?;
        let back = load_table(&path)?;
        assert_eq!(back.nrows(), t.nrows());
        assert_eq!(back.row_texts(2), t.row_texts(2));
        let _ = std::fs::remove_file(&path);
        Ok(())
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_table("/nonexistent/nowhere.csv").unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }
}
