//! Deterministic train/test splits.
//!
//! The paper separates 30% of each dataset as a test set and computes the F1
//! score of the learner's labeling on it (Appendix C.1, Evaluation Metrics).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits `0..n` into `(train, test)` row-index sets with `test_frac` of the
/// rows in the test set, deterministically from `seed`.
///
/// Both sides are returned sorted so downstream iteration order is stable.
///
/// # Panics
/// Panics if `test_frac` is outside `[0, 1]`.
pub fn split_rows(n: usize, test_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&test_frac),
        "test_frac must be in [0, 1], got {test_frac}"
    );
    let mut rows: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa076_1d64_78bd_642f);
    rows.shuffle(&mut rng);
    let n_test = (n as f64 * test_frac).round() as usize;
    let (test, train) = rows.split_at(n_test.min(n));
    let mut train = train.to_vec();
    let mut test = test.to_vec();
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_complete_and_disjoint() {
        let (train, test) = split_rows(100, 0.3, 42);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(split_rows(50, 0.3, 7), split_rows(50, 0.3, 7));
        assert_ne!(split_rows(50, 0.3, 7).1, split_rows(50, 0.3, 8).1);
    }

    #[test]
    fn extreme_fractions() {
        let (train, test) = split_rows(10, 0.0, 1);
        assert_eq!(train.len(), 10);
        assert!(test.is_empty());
        let (train, test) = split_rows(10, 1.0, 1);
        assert!(train.is_empty());
        assert_eq!(test.len(), 10);
    }

    #[test]
    fn empty_input_ok() {
        let (train, test) = split_rows(0, 0.3, 1);
        assert!(train.is_empty() && test.is_empty());
    }
}
