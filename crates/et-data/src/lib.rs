//! Relational data substrate for the exploratory-training reproduction.
//!
//! This crate provides everything the paper's evaluation needs below the
//! FD layer:
//!
//! * [`Schema`]/[`Table`] — a column-major, dictionary-encoded relational
//!   table. Cell values are interned per column, so equality tests (the only
//!   operation FD semantics need) are `u32` comparisons.
//! * [`csv`] — a small, dependency-free CSV reader/writer.
//! * [`gen`] — synthetic dataset generators reproducing the schemas and
//!   exact-FD structure of the paper's four datasets (OMDB, Airport,
//!   Hospital, Tax) plus a generic FD-respecting generator.
//! * [`inject`] — BART-style error injection: scrambles right-hand-side
//!   cells with respect to a set of target/alternative FDs until a requested
//!   degree of violation is reached, tracking ground-truth dirty rows/cells.
//! * [`split`] — deterministic train/test row splits (the paper holds out
//!   30% of every dataset for F1 evaluation).
//!
//! The real datasets used by the paper are replaced by generators because
//! every algorithm under test consumes only the *group structure* of the
//! data (which tuple pairs agree on which attribute sets); the generators
//! control that structure exactly. See `DESIGN.md` §2.

#![warn(missing_docs)]

pub mod csv;
pub mod errors;
pub mod gen;
pub mod inject;
pub mod schema;
pub mod split;
pub mod stats;
pub mod subset;
pub mod table;

pub use csv::{load_table, save_table};
pub use errors::{ErrorGenerator, ErrorKind};
pub use gen::{DatasetSpec, GeneratedDataset};
pub use inject::{inject_errors, violation_degree, InjectConfig, Injection};
pub use schema::{AttrId, Schema};
pub use split::split_rows;
pub use stats::{column_stats, table_stats, ColumnStats};
pub use subset::{select_subset_with_degree, SubsetSelection};
pub use table::{Table, TableBuilder};

/// A functional dependency expressed over attribute *indices* of a schema.
///
/// `et-data` sits below the FD crate in the dependency order, so generators
/// and the error injector describe ground-truth dependencies with this plain
/// index form; `et-fd` converts it into its bitmask representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FdSpec {
    /// Attribute indices of the left-hand side (determinant).
    pub lhs: Vec<usize>,
    /// Attribute index of the single right-hand side attribute.
    pub rhs: usize,
}

impl FdSpec {
    /// Builds an FD spec, normalising (sorting and deduplicating) the LHS.
    ///
    /// # Panics
    /// Panics if the LHS is empty or contains the RHS (the paper considers
    /// only non-trivial, normalized FDs).
    pub fn new(mut lhs: Vec<usize>, rhs: usize) -> Self {
        lhs.sort_unstable();
        lhs.dedup();
        assert!(!lhs.is_empty(), "FD must have a non-empty LHS");
        assert!(
            !lhs.contains(&rhs),
            "FD must be non-trivial (RHS not in LHS)"
        );
        Self { lhs, rhs }
    }

    /// Renders the FD using attribute names from `schema`, e.g. `Team -> City`.
    pub fn display(&self, schema: &Schema) -> String {
        let lhs: Vec<&str> = self.lhs.iter().map(|&a| schema.name(a as AttrId)).collect();
        format!("{} -> {}", lhs.join(","), schema.name(self.rhs as AttrId))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fd_spec_normalises_lhs() {
        let fd = FdSpec::new(vec![2, 0, 2], 1);
        assert_eq!(fd.lhs, vec![0, 2]);
        assert_eq!(fd.rhs, 1);
    }

    #[test]
    #[should_panic(expected = "non-trivial")]
    fn fd_spec_rejects_trivial() {
        let _ = FdSpec::new(vec![0, 1], 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn fd_spec_rejects_empty_lhs() {
        let _ = FdSpec::new(vec![], 1);
    }
}
