//! End-to-end self-test: the `et-lint` *binary* must exit non-zero on a
//! seeded violation of each rule L1-L11, zero on a clean tree, and two —
//! never one, never a panic — on configuration or I/O failures.

// Test-support helpers outside #[test] fns may expect/unwrap freely.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("et-lint-exit-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, content) in files {
        let path = root.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(&path, content).expect("write");
    }
    root
}

fn lint(root: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_et-lint"))
        .args(["--root"])
        .arg(root)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn clean_tree_exits_zero() {
    let root = scratch(
        "clean",
        &[(
            "crates/a/src/lib.rs",
            "//! Docs.\npub fn ok(x: usize) -> usize { x + 1 }\n",
        )],
    );
    let (code, out) = lint(&root);
    assert_eq!(code, 0, "stdout: {out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn each_rule_seeded_violation_exits_nonzero() {
    let cases: [(&str, &str, &str, &str); 4] = [
        (
            "l1",
            "crates/a/src/lib.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            "[L1]",
        ),
        (
            "l2",
            "crates/a/src/lib.rs",
            "pub fn f() -> u64 { let mut r = rand::thread_rng(); 0 }\n",
            "[L2]",
        ),
        (
            "l3",
            "crates/a/src/lib.rs",
            "pub fn f(x: f64) -> bool { x == 0.25 }\n",
            "[L3]",
        ),
        (
            "l4",
            "crates/a/src/lib.rs",
            "/// Undocumented panic.\npub fn f(x: usize) { assert!(x > 0); }\n",
            "[L4]",
        ),
    ];
    for (name, rel, content, marker) in cases {
        let root = scratch(name, &[(rel, content)]);
        let (code, out) = lint(&root);
        assert_eq!(code, 1, "rule {name} should fail; stdout: {out}");
        assert!(out.contains(marker), "rule {name} marker in: {out}");
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn allowlisted_violation_exits_zero() {
    let root = scratch(
        "allowed",
        &[
            (
                "crates/a/src/lib.rs",
                "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
            (
                "et-lint.toml",
                "[[allow]]\nrule = \"L1\"\npath = \"crates/a/src/lib.rs\"\n\
                 pattern = \"x.unwrap()\"\nreason = \"seeded exception for the exit-code test\"\n",
            ),
        ],
    );
    let (code, out) = lint(&root);
    assert_eq!(code, 0, "stdout: {out}");
    assert!(out.contains("1 suppressed"), "stdout: {out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn bad_allowlist_exits_two() {
    // Unknown rule id, missing required keys, and non-toml garbage must all
    // exit 2 (configuration error), not 1 and not a panic.
    let configs = [
        "[[allow]]\nrule = \"L99\"\npath = \"x.rs\"\nreason = \"r\"\n",
        "[[allow]]\nrule = \"L7\"\n",
        "rule = \"L1\"\n",
        "[[allow]]\nnot a key value line\n",
    ];
    for (n, cfg) in configs.iter().enumerate() {
        let root = scratch(
            &format!("badconf{n}"),
            &[
                ("crates/a/src/lib.rs", "//! Fine.\n"),
                ("et-lint.toml", cfg),
            ],
        );
        let (code, _) = lint(&root);
        assert_eq!(code, 2, "config #{n}: {cfg}");
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[cfg(unix)]
#[test]
fn unreadable_tree_exits_two() {
    // A dangling symlink makes the walk's read fail even when running as
    // root (permission bits would be ignored); the engine must report a
    // configuration/IO error, not a finding and not a panic.
    let root = scratch("unreadable", &[("crates/a/src/lib.rs", "//! Fine.\n")]);
    std::os::unix::fs::symlink(
        "/nonexistent-et-lint-target",
        root.join("crates/a/src/gone.rs"),
    )
    .expect("symlink");
    let (code, out) = lint(&root);
    assert_eq!(code, 2, "stdout: {out}");
    let _ = std::fs::remove_dir_all(&root);
}

/// One seeded violation per token-level rule. L5 uses `unwrap()` to bind the
/// guard (a guard-preserving adapter), so the tree also fires L1 — the
/// assertion therefore checks the marker, not the violation count.
#[test]
fn each_token_rule_seeded_violation_exits_nonzero() {
    let cases: [(&str, &str, &str); 4] = [
        (
            "l5",
            "use std::sync::{Mutex, mpsc::Receiver};\n\
             pub fn f(rx: &Mutex<Receiver<u32>>) -> Option<u32> {\n\
                 let guard = rx.lock().unwrap();\n\
                 guard.recv().ok()\n\
             }\n",
            "[L5]",
        ),
        (
            "l6",
            "use std::sync::atomic::{AtomicBool, Ordering};\n\
             pub fn f(a: &AtomicBool) -> bool {\n\
                 a.load(Ordering::Acquire)\n\
             }\n",
            "[L6]",
        ),
        ("l7", "pub fn f(x: usize) -> u16 { x as u16 }\n", "[L7]"),
        (
            "l8",
            "use std::collections::HashMap;\n\
             pub fn keys(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                 m.keys().copied().collect()\n\
             }\n",
            "[L8]",
        ),
    ];
    for (name, content, marker) in cases {
        let root = scratch(name, &[("crates/a/src/lib.rs", content)]);
        let (code, out) = lint(&root);
        assert_eq!(code, 1, "rule {name} should fail; stdout: {out}");
        assert!(out.contains(marker), "rule {name} marker in: {out}");
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// The escape hatch for each token-level rule: an et-lint.toml entry for
/// L5/L7/L8, and the `// ord:` justification comment for L6 (which has no
/// allowlist escape by design).
#[test]
fn token_rules_allowlisted_or_annotated_exit_zero() {
    let root = scratch(
        "tokallow",
        &[
            (
                "crates/a/src/lib.rs",
                "use std::collections::HashMap;\n\
                 use std::sync::atomic::{AtomicBool, Ordering};\n\
                 pub fn cast(x: usize) -> u16 { x as u16 }\n\
                 pub fn keys(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                     m.keys().copied().collect()\n\
                 }\n\
                 pub fn flag(a: &AtomicBool) -> bool {\n\
                     a.load(Ordering::Acquire) // ord: pairs with the Release store in set()\n\
                 }\n",
            ),
            (
                "et-lint.toml",
                "[[allow]]\nrule = \"L7\"\npath = \"crates/a/src/lib.rs\"\n\
                 pattern = \"as u16\"\nreason = \"seeded: x is bounded by the fixture\"\n\
                 [[allow]]\nrule = \"L8\"\npath = \"crates/a/src/lib.rs\"\n\
                 pattern = \"collect\"\nreason = \"seeded: caller sorts\"\n",
            ),
        ],
    );
    let (code, out) = lint(&root);
    assert_eq!(code, 0, "stdout: {out}");
    assert!(out.contains("2 suppressed"), "stdout: {out}");
    let _ = std::fs::remove_dir_all(&root);
}

/// An `// ord:` comment with no justification text, or on a line with no
/// Ordering use at all (stale), both fire L6.
#[test]
fn empty_or_stale_ord_comment_exits_nonzero() {
    let root = scratch(
        "ordstale",
        &[(
            "crates/a/src/lib.rs",
            "use std::sync::atomic::{AtomicBool, Ordering};\n\
             pub fn f(a: &AtomicBool) -> bool {\n\
                 let x = 1 + 1; // ord: stale, no atomic on this line\n\
                 let _ = x;\n\
                 a.load(Ordering::Acquire) // ord:\n\
             }\n",
        )],
    );
    let (code, out) = lint(&root);
    assert_eq!(code, 1, "stdout: {out}");
    assert_eq!(out.matches("[L6]").count(), 2, "stdout: {out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn explain_mode_covers_every_rule_and_rejects_unknown_ids() {
    for id in [
        "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10", "L11", "L12", "L13", "L14",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_et-lint"))
            .args(["--explain", id])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(0), "{id}");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.starts_with(&format!("{id} — ")), "{id}: {text}");
        assert!(text.len() > 80, "{id} explain too thin: {text}");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_et-lint"))
        .args(["--explain", "L99"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn workspace_at_head_is_clean() {
    // The real acceptance gate: the repository this test compiles from must
    // itself lint clean.
    let ws_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (code, out) = lint(&ws_root);
    assert_eq!(code, 0, "workspace must lint clean:\n{out}");
}

/// The graph rules end-to-end through the binary: entry declarations in
/// et-lint.toml, a panic three calls deep, exit 1 with the witness chain.
#[test]
fn graph_rule_seeded_violation_exits_nonzero() {
    let root = scratch(
        "l9bin",
        &[
            (
                "crates/a/src/lib.rs",
                "//! Fixture.\n                 /// Entry.\n                 pub fn entry(rows: &[u32]) -> u32 { middle(rows) }\n                 fn middle(rows: &[u32]) -> u32 { deep(rows) }\n                 fn deep(rows: &[u32]) -> u32 { rows[0] }\n",
            ),
            (
                "et-lint.toml",
                "[[entry]]\nrule = \"L9\"\npattern = \"a::entry\"\n",
            ),
        ],
    );
    let (code, out) = lint(&root);
    assert_eq!(code, 1, "stdout: {out}");
    assert!(out.contains("[L9]"), "stdout: {out}");
    assert!(out.contains("via "), "witness chain rendered: {out}");
    let _ = std::fs::remove_dir_all(&root);
}

/// `--json` emits the documented machine-readable schema with the same
/// exit-code contract as the human renderer.
#[test]
fn json_flag_emits_schema_with_same_exit_codes() {
    let root = scratch(
        "jsonbin",
        &[(
            "crates/a/src/lib.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )],
    );
    let out = Command::new(env!("CARGO_BIN_EXE_et-lint"))
        .args(["--json", "--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let doc = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"version\": 2,",
        "\"rule\": \"L1\"",
        "\"witness\": []",
        "\"cost_report\": []",
        "\"clean\": false",
    ] {
        assert!(doc.contains(needle), "missing {needle} in: {doc}");
    }
    let _ = std::fs::remove_dir_all(&root);

    let root = scratch("jsonclean", &[("crates/a/src/lib.rs", "//! Fine.\n")]);
    let out = Command::new(env!("CARGO_BIN_EXE_et-lint"))
        .args(["--json", "--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let doc = String::from_utf8_lossy(&out.stdout);
    assert!(doc.contains("\"clean\": true"), "{doc}");
    let _ = std::fs::remove_dir_all(&root);
}

/// A malformed `[[hot]]` table (no pattern) is a configuration error:
/// exit 2 before any scanning.
#[test]
fn malformed_hot_table_is_config_error() {
    let root = scratch(
        "badhot",
        &[
            ("crates/a/src/lib.rs", "//! Fine.\n"),
            ("et-lint.toml", "[[hot]]\nnote = \"no pattern given\"\n"),
        ],
    );
    let out = Command::new(env!("CARGO_BIN_EXE_et-lint"))
        .arg("--root")
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("[[hot]]"), "stderr names the table: {err}");
    let _ = std::fs::remove_dir_all(&root);
}

/// A `[[hot]]` pattern matching no function keeps the run dirty (exit 1)
/// and suggests the nearest real function, so a renamed root cannot
/// silently drop its budget.
#[test]
fn stale_hot_root_suggests_nearest_function() {
    let root = scratch(
        "stalehot",
        &[
            (
                "crates/a/src/lib.rs",
                "//! Fixture.\n                 /// Scoring root.\n                 pub fn score_all(words: &[u64]) -> u64 { words.iter().sum() }\n",
            ),
            (
                "et-lint.toml",
                "[[hot]]\npattern = \"a::scoer_all\"\n",
            ),
        ],
    );
    let (code, out) = lint(&root);
    assert_eq!(code, 1, "stale hot root keeps the run dirty: {out}");
    assert!(out.contains("matches no function"), "stdout: {out}");
    assert!(
        out.contains("did you mean") && out.contains("score_all"),
        "stdout: {out}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// `--cost-report` emits the HOTPATH schema document and exits with the
/// same clean/dirty contract as the normal run.
#[test]
fn cost_report_flag_emits_hotpath_schema() {
    let root = scratch(
        "costreport",
        &[
            (
                "crates/a/src/lib.rs",
                "//! Fixture.\n                 /// Scoring root: allocation-free fold.\n                 pub fn score_all(words: &[u64]) -> u64 { words.iter().fold(0, |a, &w| a ^ w) }\n",
            ),
            (
                "et-lint.toml",
                "[[hot]]\npattern = \"a::score_all\"\n",
            ),
        ],
    );
    let out = Command::new(env!("CARGO_BIN_EXE_et-lint"))
        .args(["--cost-report", "--root"])
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let doc = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "\"schema\": \"et-lint/hotpath-v1\"",
        "\"pattern\": \"a::score_all\"",
        "\"cost_sites\": {\"alloc\": 0, \"lock\": 0, \"io\": 0}",
    ] {
        assert!(doc.contains(needle), "missing {needle} in: {doc}");
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// A stale allowlist entry whose path is one rename away from a scanned
/// file gets a "did you mean" suggestion in the report.
#[test]
fn stale_allow_suggests_nearest_path() {
    let root = scratch(
        "stalesuggest",
        &[
            ("crates/a/src/session.rs", "//! Fine.\n"),
            ("crates/a/src/lib.rs", "//! Fine.\n"),
            (
                "et-lint.toml",
                "[[allow]]\nrule = \"L1\"\npath = \"crates/a/src/sesssion.rs\"\n                 reason = \"points at a renamed file\"\n",
            ),
        ],
    );
    let (code, out) = lint(&root);
    assert_eq!(code, 1, "stale allow keeps the run dirty: {out}");
    assert!(
        out.contains("did you mean 'crates/a/src/session.rs'"),
        "stdout: {out}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
