//! End-to-end self-test: the `et-lint` *binary* must exit non-zero on a
//! seeded violation of each rule L1-L4, and zero on a clean tree.

// Test-support helpers outside #[test] fns may expect/unwrap freely.
#![allow(clippy::expect_used, clippy::unwrap_used)]
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("et-lint-exit-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, content) in files {
        let path = root.join(rel);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("mkdir");
        }
        std::fs::write(&path, content).expect("write");
    }
    root
}

fn lint(root: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_et-lint"))
        .args(["--root"])
        .arg(root)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn clean_tree_exits_zero() {
    let root = scratch(
        "clean",
        &[(
            "crates/a/src/lib.rs",
            "//! Docs.\npub fn ok(x: usize) -> usize { x + 1 }\n",
        )],
    );
    let (code, out) = lint(&root);
    assert_eq!(code, 0, "stdout: {out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn each_rule_seeded_violation_exits_nonzero() {
    let cases: [(&str, &str, &str, &str); 4] = [
        (
            "l1",
            "crates/a/src/lib.rs",
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            "[L1]",
        ),
        (
            "l2",
            "crates/a/src/lib.rs",
            "pub fn f() -> u64 { let mut r = rand::thread_rng(); 0 }\n",
            "[L2]",
        ),
        (
            "l3",
            "crates/a/src/lib.rs",
            "pub fn f(x: f64) -> bool { x == 0.25 }\n",
            "[L3]",
        ),
        (
            "l4",
            "crates/a/src/lib.rs",
            "/// Undocumented panic.\npub fn f(x: usize) { assert!(x > 0); }\n",
            "[L4]",
        ),
    ];
    for (name, rel, content, marker) in cases {
        let root = scratch(name, &[(rel, content)]);
        let (code, out) = lint(&root);
        assert_eq!(code, 1, "rule {name} should fail; stdout: {out}");
        assert!(out.contains(marker), "rule {name} marker in: {out}");
        let _ = std::fs::remove_dir_all(&root);
    }
}

#[test]
fn allowlisted_violation_exits_zero() {
    let root = scratch(
        "allowed",
        &[
            (
                "crates/a/src/lib.rs",
                "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
            (
                "et-lint.toml",
                "[[allow]]\nrule = \"L1\"\npath = \"crates/a/src/lib.rs\"\n\
                 pattern = \"x.unwrap()\"\nreason = \"seeded exception for the exit-code test\"\n",
            ),
        ],
    );
    let (code, out) = lint(&root);
    assert_eq!(code, 0, "stdout: {out}");
    assert!(out.contains("1 suppressed"), "stdout: {out}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn bad_allowlist_exits_two() {
    let root = scratch(
        "badconf",
        &[
            ("crates/a/src/lib.rs", "//! Fine.\n"),
            ("et-lint.toml", "[[allow]]\nrule = \"L7\"\n"),
        ],
    );
    let (code, _) = lint(&root);
    assert_eq!(code, 2);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn workspace_at_head_is_clean() {
    // The real acceptance gate: the repository this test compiles from must
    // itself lint clean.
    let ws_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (code, out) = lint(&ws_root);
    assert_eq!(code, 0, "workspace must lint clean:\n{out}");
}
