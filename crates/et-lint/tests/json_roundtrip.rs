//! The `--json` and `--cost-report` documents must be real JSON, not just
//! string-matched fragments: both are re-parsed here with et-serve's
//! hand-rolled RFC 8259 parser (`et_serve::json::Json`) — the same parser
//! a dashboard polling the serve layer would use — and cross-checked
//! field-by-field against the in-memory [`Report`].

use std::path::Path;

use et_serve::json::Json;

#[test]
fn lint_json_schema_v2_reparses_with_serve_parser() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = et_lint::run(&root).expect("workspace lints");
    let mut sink = Vec::new();
    et_lint::json_out::render_json(&report, &root.join("et-lint.toml"), &mut sink);
    let text = String::from_utf8(sink).expect("utf8");

    let doc = Json::parse(&text).expect("render_json emits parseable JSON");
    assert_eq!(
        doc.get("version").and_then(Json::as_u64),
        Some(2),
        "schema v2 carries the cost report"
    );
    assert_eq!(
        doc.get("files_scanned").and_then(Json::as_u64),
        Some(report.files_scanned as u64)
    );
    assert_eq!(
        doc.get("clean").and_then(Json::as_bool),
        Some(report.is_clean())
    );

    let cost = doc
        .get("cost_report")
        .and_then(Json::as_array)
        .expect("cost_report array present");
    assert_eq!(cost.len(), report.hot_roots.len());
    for (obj, stat) in cost.iter().zip(&report.hot_roots) {
        assert_eq!(
            obj.get("pattern").and_then(Json::as_str),
            Some(stat.pattern.as_str())
        );
        let sites = obj.get("cost_sites").expect("cost_sites object");
        assert_eq!(
            sites.get("alloc").and_then(Json::as_u64),
            Some(stat.alloc_sites as u64)
        );
        assert_eq!(
            sites.get("lock").and_then(Json::as_u64),
            Some(stat.lock_sites as u64)
        );
        assert_eq!(
            sites.get("io").and_then(Json::as_u64),
            Some(stat.io_sites as u64)
        );
        let vetted = obj
            .get("vetted")
            .and_then(Json::as_array)
            .expect("vetted array");
        assert_eq!(vetted.len(), stat.vetted.len());
        for (v, site) in vetted.iter().zip(&stat.vetted) {
            assert_eq!(
                v.get("bound").and_then(Json::as_str),
                Some(site.bound.as_str()),
                "every vet carries its stated bound"
            );
        }
    }
}

#[test]
fn hotpath_document_reparses_and_matches_checked_in_report() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = et_lint::run(&root).expect("workspace lints");
    let mut sink = Vec::new();
    et_lint::json_out::render_hotpath(&report, &mut sink);
    let text = String::from_utf8(sink).expect("utf8");

    let doc = Json::parse(&text).expect("render_hotpath emits parseable JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(et_lint::json_out::HOTPATH_SCHEMA)
    );
    let roots = doc
        .get("hot_roots")
        .and_then(Json::as_array)
        .expect("hot_roots array");
    assert_eq!(roots.len(), report.hot_roots.len());
    assert!(
        !roots.is_empty(),
        "the workspace declares [[hot]] roots: {text}"
    );

    // The checked-in HOTPATH.json is the same document byte for byte (the
    // ci gate regenerates and diffs it; this test catches drift earlier).
    let checked_in =
        std::fs::read_to_string(root.join("HOTPATH.json")).expect("HOTPATH.json checked in");
    assert_eq!(
        checked_in, text,
        "HOTPATH.json is stale: regenerate with `cargo lint -- --cost-report > HOTPATH.json`"
    );
}
