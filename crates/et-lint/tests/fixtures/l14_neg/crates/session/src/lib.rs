//! L14 negative fixture: the hot labeling root's only reachable I/O is
//! the write-ahead append, vetted in et-lint.toml as the deliberate
//! durability contract.

/// The labeling step (declared `[[hot]]` in et-lint.toml): write-ahead,
/// then fold the verdicts.
pub fn apply_labels(path: &str, labels: &[bool]) -> usize {
    if !append(path, labels) {
        return 0;
    }
    labels.iter().filter(|&&l| l).count()
}

fn append(path: &str, labels: &[bool]) -> bool {
    let mut byte = 0u8;
    for (i, &l) in labels.iter().enumerate().take(8) {
        if l {
            byte |= 1 << i;
        }
    }
    std::fs::write(path, [byte]).is_ok()
}
