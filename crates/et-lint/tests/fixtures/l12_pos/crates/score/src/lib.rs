//! L12 positive fixture: the hot scoring root reaches a `format!`
//! allocation one call deep. L1–L8 cannot see this — the allocation
//! hides in a private helper and is charged to the root by reachability.

/// The per-round scoring entry (declared `[[hot]]` in et-lint.toml).
pub fn score_all(words: &[u64]) -> u64 {
    fold_words(words)
}

fn fold_words(words: &[u64]) -> u64 {
    let tag = format!("{}-lanes", words.len());
    words.iter().fold(tag.len() as u64, |acc, &w| acc ^ w)
}

/// Allocates too, but is unreachable from the hot root: must not fire.
pub fn detached(n: usize) -> Vec<u64> {
    vec![0; n]
}
