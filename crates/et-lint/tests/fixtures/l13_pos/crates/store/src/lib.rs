//! L13 positive fixture: the hot scoring root takes a mutex one call
//! deep — a blocking acquisition on the annotator-facing path.

use std::sync::Mutex;

/// Shared cell store guarded by a mutex.
pub struct Store {
    cells: Mutex<[u64; 4]>,
}

impl Store {
    /// The per-round scoring entry (declared `[[hot]]` in et-lint.toml).
    pub fn score_all(&self) -> u64 {
        self.fold()
    }

    fn fold(&self) -> u64 {
        match self.cells.lock() {
            Ok(cells) => cells.iter().copied().sum(),
            Err(_) => 0,
        }
    }
}
