//! L9 positive fixture: a public entry point reaches an indexing panic
//! two calls deep. Note L1 cannot see this — there is no unwrap/expect,
//! only a slice index that panics when `rows` is empty.

/// Public API entry point (declared in et-lint.toml).
pub fn entry(rows: &[u32]) -> u32 {
    middle(rows)
}

fn middle(rows: &[u32]) -> u32 {
    deep(rows)
}

fn deep(rows: &[u32]) -> u32 {
    rows[0]
}

/// Panics too, but is unreachable from the declared entry: must not fire.
pub fn detached(rows: &[u32]) -> u32 {
    rows[1]
}
