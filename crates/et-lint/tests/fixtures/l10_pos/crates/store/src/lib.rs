//! L10 positive fixture: a deliberate two-lock inversion. `sum_ab` takes
//! shard `a` then `b`; `sum_ba` takes `b` then `a`. Neither function
//! panics or fails a test — only the order relation sees the deadlock.

use std::sync::Mutex;

/// Two shards guarded independently.
pub struct Store {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Store {
    /// Locks `a` then `b`.
    pub fn sum_ab(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    /// Locks `b` then `a` — inverted.
    pub fn sum_ba(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }
}
