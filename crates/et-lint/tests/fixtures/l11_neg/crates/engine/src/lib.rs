//! L11 negative fixture: the step path is pure; the clock is only read
//! from a function the entry cannot reach.

use std::time::Instant;

/// Session step entry point (declared in et-lint.toml).
pub fn step(x: u64) -> u64 {
    fold(x)
}

fn fold(x: u64) -> u64 {
    x.wrapping_mul(2)
}

/// Off the session path; may read the clock freely.
pub fn metrics_tick() -> Instant {
    Instant::now()
}
