//! L12 negative fixture: the hot root's only reachable allocation is a
//! bounded lane table, vetted in et-lint.toml with a stated bound; the
//! fold itself writes no heap.

/// The per-round scoring entry (declared `[[hot]]` in et-lint.toml).
pub fn score_all(words: &[u64]) -> u64 {
    let lanes = lane_table();
    words
        .iter()
        .enumerate()
        .fold(0, |acc, (i, &w)| acc ^ (w >> lanes[i % 4]))
}

fn lane_table() -> Vec<u32> {
    vec![0, 7, 13, 29]
}
