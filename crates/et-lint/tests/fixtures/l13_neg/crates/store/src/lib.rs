//! L13 negative fixture: the hot root folds a caller-provided snapshot;
//! the lock acquisition lives outside the hot path and must not fire.

use std::sync::Mutex;

/// Shared cell store guarded by a mutex.
pub struct Store {
    cells: Mutex<[u64; 4]>,
}

/// The per-round scoring entry (declared `[[hot]]` in et-lint.toml):
/// pure fold over an already-snapshotted slice.
pub fn score_all(cells: &[u64]) -> u64 {
    fold(cells)
}

fn fold(cells: &[u64]) -> u64 {
    cells.iter().fold(0, |acc, &w| acc ^ (w >> 3))
}

/// Takes the lock — but outside the hot path (callers snapshot between
/// rounds, not inside them).
pub fn snapshot(store: &Store) -> [u64; 4] {
    match store.cells.lock() {
        Ok(cells) => *cells,
        Err(_) => [0; 4],
    }
}
