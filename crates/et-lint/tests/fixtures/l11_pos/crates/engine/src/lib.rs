//! L11 positive fixture: the replay/step path reaches a wall-clock read.

use std::time::Instant;

/// Session step entry point (declared in et-lint.toml).
pub fn step() -> u64 {
    stamp()
}

fn stamp() -> u64 {
    let t = Instant::now();
    u64::from(t.elapsed().subsec_nanos())
}

/// Off the session path; may read the clock freely.
pub fn metrics_tick() -> Instant {
    Instant::now()
}
