//! L14 positive fixture: the hot labeling root persists eagerly — a
//! filesystem write on the annotator-facing path, one call deep.

/// The labeling step (declared `[[hot]]` in et-lint.toml).
pub fn apply_labels(path: &str, labels: &[bool]) -> bool {
    persist(path, labels)
}

fn persist(path: &str, labels: &[bool]) -> bool {
    let mut byte = 0u8;
    for (i, &l) in labels.iter().enumerate().take(8) {
        if l {
            byte |= 1 << i;
        }
    }
    std::fs::write(path, [byte]).is_ok()
}
