//! L10 negative fixture: every function takes `a` before `b`, and one
//! drops its first guard before the second acquisition.

use std::sync::Mutex;

/// Two shards guarded independently.
pub struct Store {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Store {
    /// Locks `a` then `b` — the canonical order.
    pub fn sum(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    /// Same order, and the `a` guard is dropped before `b` is taken.
    pub fn staged(&self) -> u32 {
        let ga = self.a.lock();
        let x = *ga;
        drop(ga);
        let gb = self.b.lock();
        x + *gb
    }
}
