//! End-to-end runs of the graph rules L9–L11 and the hot-path cost rules
//! L12–L14 over the fixture trees in `tests/fixtures/`. Each tree is a
//! miniature workspace root (with its own `et-lint.toml` where the rule
//! needs entry/source/hot declarations); every rule has a known-positive
//! and a known-negative tree.

use std::path::PathBuf;

use et_lint::{render, run, Report};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn report(name: &str) -> Report {
    run(&fixture(name)).unwrap_or_else(|e| panic!("fixture {name} must run: {e}"))
}

fn fired(report: &Report) -> Vec<&str> {
    report
        .findings
        .iter()
        .map(|f| f.violation.rule.id())
        .collect()
}

#[test]
fn l9_positive_fires_with_three_hop_witness() {
    let r = report("l9_pos");
    assert_eq!(fired(&r), ["L9"], "{r:?}");
    let f = &r.findings[0];
    assert_eq!(f.path, "crates/api/src/lib.rs");
    assert!(
        f.violation.message.contains("api::deep"),
        "{}",
        f.violation.message
    );
    assert!(
        f.violation.message.contains("index/slice"),
        "{}",
        f.violation.message
    );
    assert_eq!(f.witness.len(), 3, "entry → middle → deep: {:?}", f.witness);
    assert!(f.witness[0].contains("api::entry"), "{:?}", f.witness);
    assert!(
        !r.findings
            .iter()
            .any(|f| f.violation.message.contains("detached")),
        "unreachable panic must not fire: {r:?}"
    );
}

#[test]
fn l9_negative_vetted_via_allowlist_is_clean() {
    let r = report("l9_neg");
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 1, "the vetted indexing is suppressed: {r:?}");
}

#[test]
fn l10_positive_two_lock_inversion_fires_with_witness_cycle() {
    let r = report("l10_pos");
    assert_eq!(fired(&r), ["L10"], "{r:?}");
    let f = &r.findings[0];
    assert!(
        f.violation.message.contains("lock-order cycle"),
        "{}",
        f.violation.message
    );
    assert!(
        f.violation.message.contains("Store.a") && f.violation.message.contains("Store.b"),
        "cycle names both lock classes: {}",
        f.violation.message
    );
    assert_eq!(
        f.witness.len(),
        2,
        "one hop per cycle edge: {:?}",
        f.witness
    );

    // The rendered report prints the witness chain under the finding.
    let mut sink = Vec::new();
    let code = render(&r, &fixture("l10_pos").join("et-lint.toml"), &mut sink);
    assert_eq!(code, 1);
    let text = String::from_utf8(sink).expect("utf8");
    assert!(text.contains("via "), "witness rendered: {text}");
    assert!(
        text.contains("sum_ab") && text.contains("sum_ba"),
        "both inversion sites shown: {text}"
    );
}

#[test]
fn l10_negative_consistent_order_is_clean() {
    let r = report("l10_neg");
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn l11_positive_fires_on_clock_read_with_chain() {
    let r = report("l11_pos");
    assert_eq!(fired(&r), ["L11"], "{r:?}");
    let f = &r.findings[0];
    assert!(
        f.violation.message.contains("engine::stamp")
            && f.violation.message.contains("Instant::now"),
        "{}",
        f.violation.message
    );
    assert_eq!(f.witness.len(), 2, "step → stamp: {:?}", f.witness);
    assert!(
        !r.findings
            .iter()
            .any(|f| f.violation.message.contains("metrics_tick")),
        "clock reads off the session path are fine: {r:?}"
    );
}

#[test]
fn l11_negative_pure_path_is_clean() {
    let r = report("l11_neg");
    assert!(r.is_clean(), "{r:?}");
}

#[test]
fn l12_positive_fires_on_transitive_format_with_witness() {
    let r = report("l12_pos");
    assert_eq!(fired(&r), ["L12"], "{r:?}");
    let f = &r.findings[0];
    assert!(
        f.violation.message.contains("score::fold_words")
            && f.violation.message.contains("format!"),
        "{}",
        f.violation.message
    );
    assert_eq!(
        f.witness.len(),
        2,
        "score_all → fold_words: {:?}",
        f.witness
    );
    assert!(f.witness[0].contains("score::score_all"), "{:?}", f.witness);
    assert!(
        !r.findings
            .iter()
            .any(|f| f.violation.message.contains("detached")),
        "allocation off the hot path must not fire: {r:?}"
    );
    // The cost report rides on the same run.
    assert_eq!(r.hot_roots.len(), 1, "{r:?}");
    let stat = &r.hot_roots[0];
    assert_eq!(stat.reachable_fns, 2, "{stat:?}");
    assert_eq!(stat.alloc_sites, 1, "{stat:?}");
    assert_eq!(stat.witness_depth, 2, "{stat:?}");
}

#[test]
fn l12_negative_vetted_setup_alloc_is_clean() {
    let r = report("l12_neg");
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(
        r.suppressed, 1,
        "the vetted lane table is suppressed: {r:?}"
    );
    // Vetted sites still count toward the budget and carry their bound.
    let stat = &r.hot_roots[0];
    assert_eq!(stat.alloc_sites, 1, "{stat:?}");
    assert_eq!(stat.vetted.len(), 1, "{stat:?}");
    assert!(stat.vetted[0].bound.contains("bounded"), "{stat:?}");
}

#[test]
fn l13_positive_fires_on_lock_behind_the_fold() {
    let r = report("l13_pos");
    assert_eq!(fired(&r), ["L13"], "{r:?}");
    let f = &r.findings[0];
    assert!(
        f.violation.message.contains("Store::fold") && f.violation.message.contains("lock"),
        "{}",
        f.violation.message
    );
    assert_eq!(f.witness.len(), 2, "score_all → fold: {:?}", f.witness);
    assert_eq!(r.hot_roots[0].lock_sites, 1, "{r:?}");
}

#[test]
fn l13_negative_lock_outside_hot_path_is_clean() {
    let r = report("l13_neg");
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 0, "nothing to vet: {r:?}");
    assert_eq!(r.hot_roots[0].lock_sites, 0, "{r:?}");
}

#[test]
fn l14_positive_fires_on_fs_write() {
    let r = report("l14_pos");
    assert_eq!(fired(&r), ["L14"], "{r:?}");
    let f = &r.findings[0];
    assert!(
        f.violation.message.contains("session::persist")
            && f.violation.message.contains("fs::write"),
        "{}",
        f.violation.message
    );
    assert_eq!(
        f.witness.len(),
        2,
        "apply_labels → persist: {:?}",
        f.witness
    );
    assert_eq!(r.hot_roots[0].io_sites, 1, "{r:?}");
}

#[test]
fn l14_negative_vetted_write_ahead_is_clean() {
    let r = report("l14_neg");
    assert!(r.is_clean(), "{r:?}");
    assert_eq!(r.suppressed, 1, "the write-ahead append is vetted: {r:?}");
    let stat = &r.hot_roots[0];
    assert_eq!(stat.io_sites, 1, "vetted I/O still counted: {stat:?}");
    assert!(stat.vetted[0].bound.contains("deliberate"), "{stat:?}");
}

#[test]
fn fixtures_report_graph_statistics() {
    let r = report("l9_pos");
    assert!(r.graph_fns >= 4, "all fixture fns in the graph: {r:?}");
}
