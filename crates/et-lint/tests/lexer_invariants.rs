//! Workspace-wide lexer invariants: for every `.rs` file under `crates/`
//! (fixture trees included), the token spans must be strictly in order,
//! non-overlapping, and must cover every non-whitespace byte of the
//! source. A gap that swallows code would silently blind every rule built
//! on the token stream, so this is checked against the real corpus, not
//! just unit snippets.

use std::path::{Path, PathBuf};

use et_lint::lexer::lex;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn spans_are_ordered_disjoint_and_cover_all_code_bytes() {
    let mut files = Vec::new();
    collect_rs(&workspace_root().join("crates"), &mut files);
    assert!(
        files.len() >= 20,
        "corpus sanity: expected a real workspace, found {} files",
        files.len()
    );

    for path in files {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue; // non-UTF-8 files are out of the lexer's contract
        };
        let ts = lex(&source);
        let mut prev_end = 0usize;
        let mut line = 1usize;
        for (i, tok) in ts.tokens.iter().enumerate() {
            assert!(
                tok.start >= prev_end,
                "{}: token {i} overlaps its predecessor ({} < {prev_end})",
                path.display(),
                tok.start
            );
            assert!(
                tok.end > tok.start,
                "{}: token {i} is empty at byte {}",
                path.display(),
                tok.start
            );
            assert!(
                tok.line >= line,
                "{}: token {i} line went backwards ({} < {line})",
                path.display(),
                tok.line
            );
            line = tok.line;
            gap_is_whitespace(&path, &source, prev_end, tok.start);
            prev_end = tok.end;
        }
        gap_is_whitespace(&path, &source, prev_end, source.len());
    }
}

fn gap_is_whitespace(path: &Path, source: &str, from: usize, to: usize) {
    let gap = &source[from..to];
    assert!(
        gap.chars().all(char::is_whitespace),
        "{}: bytes {from}..{to} are untokenized code: {gap:?}",
        path.display()
    );
}
