//! The interprocedural rules L9–L11, powered by [`crate::callgraph`].
//!
//! All three analyses are deterministic: entries, reachability frontiers,
//! lock classes, and cycle scans all iterate `BTreeMap`/`BTreeSet`s or
//! id-ordered vectors, so two runs over the same tree produce identical
//! findings in identical order.
//!
//! Configuration comes from `et-lint.toml` (see [`crate::allowlist`]):
//! `[[entry]]` tables select entry-point functions by qualified-name
//! substring, `[[source]]` tables declare L11 taint sources. With no
//! configuration the rules are vacuous — the graph is still built (and its
//! unresolved bucket still reported), but nothing can fire.

use std::collections::{BTreeMap, BTreeSet};

use crate::allowlist::Allowlist;
use crate::callgraph::CallGraph;
use crate::parser::Callee;
use crate::rules::{Rule, Violation};

/// A graph-rule finding: a violation plus its witness call chain.
#[derive(Debug)]
pub struct GraphFinding {
    /// Repo-relative path of the offending function's file.
    pub path: String,
    /// The violation (rule, line, message, excerpt).
    pub violation: Violation,
    /// Witness chain, entry first, one `qual (file:line)` hop per element.
    pub witness: Vec<String>,
}

/// Runs L9, L10, and L11 over the linked graph.
pub fn check(graph: &CallGraph, config: &Allowlist) -> Vec<GraphFinding> {
    let mut out = Vec::new();
    l9_panic_reachability(graph, config, &mut out);
    l10_lock_order(graph, &mut out);
    l11_determinism_taint(graph, config, &mut out);
    out
}

/// L9: panic-capable operations reachable from public API entry points.
fn l9_panic_reachability(graph: &CallGraph, config: &Allowlist, out: &mut Vec<GraphFinding>) {
    let patterns = Allowlist::specs_for(&config.graph_entries, "L9");
    if patterns.is_empty() {
        return;
    }
    let mut entries = Vec::new();
    for p in &patterns {
        entries.extend(graph.match_entries(p, true));
    }
    let parents = graph.reach(&entries);
    for &id in parents.keys() {
        let node = &graph.nodes[id];
        // The assert family is out of L9's scope: asserts are deliberate,
        // documented invariant checks (L4 enforces the documentation).
        // L9 hunts the *accidental* panics: panic!/unreachable!/todo!,
        // unwrap/expect, and unguarded indexing.
        let Some(op) = node
            .item
            .panics
            .iter()
            .find(|p| !p.what.starts_with("assert"))
        else {
            continue;
        };
        let extras = node
            .item
            .panics
            .iter()
            .filter(|p| !p.what.starts_with("assert"))
            .count()
            - 1;
        let witness = graph.witness(&parents, id);
        let entry_desc = witness.first().cloned().unwrap_or_else(|| node.qual());
        let extra = if extras > 0 {
            format!(" (+{extras} more panic-capable op(s) in this fn)")
        } else {
            String::new()
        };
        out.push(GraphFinding {
            path: node.file.clone(),
            violation: Violation {
                rule: Rule::L9,
                line: op.line,
                message: format!(
                    "`{}` is reachable from public entry {} and contains {} on `{}`{}",
                    node.qual(),
                    entry_desc,
                    op.kind.label(),
                    op.what,
                    extra
                ),
                excerpt: op.line_text.clone(),
            },
            witness,
        });
    }
}

/// One lock acquisition inside a function, attributed to a lock class.
#[derive(Debug, Clone)]
struct Acq {
    /// Lock class, e.g. `SessionStore.shards` or `et_serve::rx`.
    class: String,
    /// Token index of the acquiring call.
    tok: usize,
    /// Token index one past the guard's live region.
    guard_end: usize,
    /// 1-based line of the acquisition.
    line: usize,
    /// Trimmed source line.
    line_text: String,
}

/// One edge of the lock-order relation, with its witness site.
#[derive(Debug, Clone)]
struct OrderWitness {
    text: String,
    file: String,
    line: usize,
    line_text: String,
}

/// L10: cycles in the workspace lock-acquisition order graph.
fn l10_lock_order(graph: &CallGraph, out: &mut Vec<GraphFinding>) {
    // Pass 1: gateway fixpoint. A gateway acquires a lock passed in by its
    // caller (`fn lock<T>(m: &Mutex<T>)`), directly or through another
    // gateway, so its acquisitions are attributed at the call site.
    let n = graph.nodes.len();
    let mut gateway = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            if gateway[id] {
                continue;
            }
            let node = &graph.nodes[id];
            let is_gw = node.item.calls.iter().enumerate().any(|(ci, c)| {
                let param_hint = |h: &Option<String>| {
                    h.as_ref()
                        .is_some_and(|h| node.item.params.iter().any(|p| p == h))
                };
                match &c.callee {
                    Callee::Method { name, recv } if name == "lock" => param_hint(&recv.hint),
                    _ => {
                        param_hint(&c.arg_hint)
                            && graph.edges[id]
                                .iter()
                                .any(|e| e.call_idx == ci && gateway[e.callee])
                    }
                }
            });
            if is_gw {
                gateway[id] = true;
                changed = true;
            }
        }
    }

    // Pass 2: per-node direct acquisitions with resolved lock classes.
    let mut acqs: Vec<Vec<Acq>> = vec![Vec::new(); n];
    for (id, node) in graph.nodes.iter().enumerate() {
        if node.item.is_test {
            continue;
        }
        for (ci, c) in node.item.calls.iter().enumerate() {
            let classify = |hint: &Option<String>, on_self: bool| -> Option<String> {
                let h = hint.as_ref()?;
                if node.item.params.iter().any(|p| p == h) {
                    return None; // parametric: attributed at *our* call sites
                }
                match (&node.item.self_type, on_self) {
                    (Some(t), true) => Some(format!("{t}.{h}")),
                    _ => Some(format!("{}::{h}", node.krate)),
                }
            };
            let class = match &c.callee {
                Callee::Method { name, recv } if name == "lock" => {
                    classify(&recv.hint, recv.is_self)
                }
                _ => {
                    let hits_gateway = graph.edges[id]
                        .iter()
                        .any(|e| e.call_idx == ci && gateway[e.callee]);
                    if hits_gateway {
                        classify(&c.arg_hint, c.arg_is_self)
                    } else {
                        None
                    }
                }
            };
            if let Some(class) = class {
                acqs[id].push(Acq {
                    class,
                    tok: c.tok,
                    guard_end: c.guard_end_tok,
                    line: c.line,
                    line_text: c.line_text.clone(),
                });
            }
        }
    }

    // Pass 3: transitive lock closure per node (classes a call into this
    // fn may acquire), by fixpoint over resolved edges.
    let mut closure: Vec<BTreeSet<String>> = acqs
        .iter()
        .map(|a| a.iter().map(|x| x.class.clone()).collect())
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..n {
            let mut add: Vec<String> = Vec::new();
            for e in &graph.edges[id] {
                for c in &closure[e.callee] {
                    if !closure[id].contains(c) {
                        add.push(c.clone());
                    }
                }
            }
            for c in add {
                if closure[id].insert(c) {
                    changed = true;
                }
            }
        }
    }

    // Pass 4: the order relation. While class A's guard is live, any
    // direct acquisition of B or any call whose closure contains B adds
    // the edge A → B. First witness per (A, B) wins (id order, so
    // deterministic).
    let mut order: BTreeMap<String, BTreeMap<String, OrderWitness>> = BTreeMap::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        for a in &acqs[id] {
            let mut record = |b_class: &str, w: OrderWitness| {
                if b_class == a.class {
                    return;
                }
                order
                    .entry(a.class.clone())
                    .or_default()
                    .entry(b_class.to_string())
                    .or_insert(w);
            };
            for b in &acqs[id] {
                if b.tok > a.tok && b.tok < a.guard_end {
                    record(
                        &b.class,
                        OrderWitness {
                            text: format!("{} then {} in `{}`", a.class, b.class, node.qual()),
                            file: node.file.clone(),
                            line: b.line,
                            line_text: b.line_text.clone(),
                        },
                    );
                }
            }
            for (ci, c) in node.item.calls.iter().enumerate() {
                if c.tok <= a.tok || c.tok >= a.guard_end {
                    continue;
                }
                for e in &graph.edges[id] {
                    if e.call_idx != ci {
                        continue;
                    }
                    for b_class in &closure[e.callee] {
                        record(
                            b_class,
                            OrderWitness {
                                text: format!(
                                    "{} held across `{}` which acquires {} in `{}`",
                                    a.class,
                                    graph.nodes[e.callee].qual(),
                                    b_class,
                                    node.qual()
                                ),
                                file: node.file.clone(),
                                line: c.line,
                                line_text: c.line_text.clone(),
                            },
                        );
                    }
                }
            }
        }
    }

    // Pass 5: cycle detection (DFS, deterministic order), one finding per
    // distinct cycle class-set.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in order.keys() {
        let mut stack = vec![start.clone()];
        let mut on_stack: BTreeSet<String> = [start.clone()].into();
        dfs_cycles(&order, &mut stack, &mut on_stack, &mut reported, out);
    }
}

/// DFS from the last element of `stack`, emitting a finding per new cycle.
fn dfs_cycles(
    order: &BTreeMap<String, BTreeMap<String, OrderWitness>>,
    stack: &mut Vec<String>,
    on_stack: &mut BTreeSet<String>,
    reported: &mut BTreeSet<Vec<String>>,
    out: &mut Vec<GraphFinding>,
) {
    let Some(cur) = stack.last().cloned() else {
        return;
    };
    let Some(nexts) = order.get(&cur) else {
        return;
    };
    for nxt in nexts.keys() {
        if on_stack.contains(nxt) {
            // Cycle: the stack suffix from `nxt` back to `cur`.
            let Some(pos) = stack.iter().position(|c| c == nxt) else {
                continue;
            };
            let cycle: Vec<String> = stack[pos..].to_vec();
            let mut key = cycle.clone();
            key.sort();
            if !reported.insert(key) {
                continue;
            }
            // Render each edge of the cycle with its witness.
            let mut witness = Vec::new();
            let mut first_site: Option<&OrderWitness> = None;
            for i in 0..cycle.len() {
                let from = &cycle[i];
                let to = &cycle[(i + 1) % cycle.len()];
                if let Some(w) = order.get(from).and_then(|m| m.get(to)) {
                    witness.push(format!("{} ({}:{})", w.text, w.file, w.line));
                    if first_site.is_none() {
                        first_site = Some(w);
                    }
                }
            }
            let Some(site) = first_site else {
                continue;
            };
            let ring = {
                let mut r = cycle.clone();
                r.push(cycle[0].clone());
                r.join(" -> ")
            };
            out.push(GraphFinding {
                path: site.file.clone(),
                violation: Violation {
                    rule: Rule::L10,
                    line: site.line,
                    message: format!("lock-order cycle: {ring}"),
                    excerpt: site.line_text.clone(),
                },
                witness,
            });
            continue;
        }
        if stack.len() > order.len() {
            continue; // depth bound; cannot happen with on_stack, belt and braces
        }
        stack.push(nxt.clone());
        on_stack.insert(nxt.clone());
        dfs_cycles(order, stack, on_stack, reported, out);
        stack.pop();
        on_stack.remove(nxt);
    }
}

/// L11: nondeterminism sources reachable from session entry points.
fn l11_determinism_taint(graph: &CallGraph, config: &Allowlist, out: &mut Vec<GraphFinding>) {
    let entry_patterns = Allowlist::specs_for(&config.graph_entries, "L11");
    if entry_patterns.is_empty() {
        return;
    }
    let source_patterns = Allowlist::specs_for(&config.graph_sources, "L11");
    let hash_iter = source_patterns.contains(&"hash-iter");
    let call_patterns: Vec<&str> = source_patterns
        .iter()
        .copied()
        .filter(|p| *p != "hash-iter")
        .collect();

    let mut entries = Vec::new();
    for p in &entry_patterns {
        entries.extend(graph.match_entries(p, false));
    }
    let parents = graph.reach(&entries);
    for &id in parents.keys() {
        let node = &graph.nodes[id];
        // Direct sources in this fn: matching rendered calls, then the
        // hash-iter heuristic; first source (lowest line) is the anchor.
        let mut sources: Vec<(usize, String, String)> = Vec::new();
        for c in &node.item.calls {
            let rendered = c.callee.render();
            if call_patterns.iter().any(|p| rendered.contains(p)) {
                sources.push((c.line, rendered, c.line_text.clone()));
            }
        }
        if hash_iter {
            if let Some(line) = node.item.hash_iter_line {
                // No per-line excerpt is recorded for the heuristic; fall
                // back to the function signature for context.
                sources.push((
                    line,
                    "unsorted HashMap/HashSet iteration".to_string(),
                    node.item.line_text.clone(),
                ));
            }
        }
        sources.sort_by_key(|s| s.0);
        let Some((line, what, line_text)) = sources.first() else {
            continue;
        };
        let witness = graph.witness(&parents, id);
        let entry_desc = witness.first().cloned().unwrap_or_else(|| node.qual());
        out.push(GraphFinding {
            path: node.file.clone(),
            violation: Violation {
                rule: Rule::L11,
                line: *line,
                message: format!(
                    "`{}` is reachable from session entry {} and touches \
                     nondeterminism source `{}`",
                    node.qual(),
                    entry_desc,
                    what
                ),
                excerpt: line_text.clone(),
            },
            witness,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, FileAst};

    fn run(files: &[(&str, &str)], config: &str) -> Vec<GraphFinding> {
        let parsed: Vec<(String, FileAst)> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), parse(src)))
            .collect();
        let graph = CallGraph::link(&parsed);
        let allow = Allowlist::parse(config).expect("test config parses");
        check(&graph, &allow)
    }

    fn rules_of(findings: &[GraphFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.violation.rule.id()).collect()
    }

    #[test]
    fn no_config_means_no_findings() {
        let findings = run(
            &[(
                "crates/a/src/api.rs",
                "pub fn entry() { helper(); }\nfn helper() { v.pop().unwrap(); }\n",
            )],
            "",
        );
        assert!(findings.is_empty(), "vacuous without entries: {findings:?}");
    }

    #[test]
    fn l9_fires_on_transitive_panic_with_witness() {
        let findings = run(
            &[(
                "crates/a/src/api.rs",
                r#"
                pub fn entry() { middle(); }
                fn middle() { deep(); }
                fn deep() { let v: Vec<u32> = Vec::new(); v.first().unwrap(); }
                fn unreached() { panic!("never"); }
                "#,
            )],
            "[[entry]]\nrule = \"L9\"\npattern = \"api::entry\"\n",
        );
        let l9: Vec<&GraphFinding> = findings
            .iter()
            .filter(|f| f.violation.rule.id() == "L9")
            .collect();
        assert_eq!(
            l9.len(),
            1,
            "exactly the reachable panic fires: {findings:?}"
        );
        let f = l9[0];
        assert!(
            f.violation.message.contains("api::deep"),
            "{}",
            f.violation.message
        );
        assert!(
            f.violation.message.contains("unwrap"),
            "{}",
            f.violation.message
        );
        assert_eq!(
            f.witness.len(),
            3,
            "entry -> middle -> deep: {:?}",
            f.witness
        );
        assert!(f.witness[0].contains("api::entry"), "{:?}", f.witness);
        assert!(f.witness[2].contains("api::deep"), "{:?}", f.witness);
        assert!(
            !findings
                .iter()
                .any(|f| f.violation.message.contains("unreached")),
            "unreachable panic must not fire: {findings:?}"
        );
    }

    #[test]
    fn l9_private_entry_patterns_match_nothing() {
        let findings = run(
            &[("crates/a/src/api.rs", "fn hidden() { x.unwrap(); }\n")],
            "[[entry]]\nrule = \"L9\"\npattern = \"api::hidden\"\n",
        );
        assert!(findings.is_empty(), "L9 entries require pub: {findings:?}");
    }

    #[test]
    fn l10_detects_two_lock_inversion_with_witness_cycle() {
        let src = r#"
            pub struct Store { a: u32, b: u32 }
            impl Store {
                pub fn ab(&self) {
                    let ga = self.a.lock();
                    let gb = self.b.lock();
                }
                pub fn ba(&self) {
                    let gb = self.b.lock();
                    let ga = self.a.lock();
                }
            }
        "#;
        let findings = run(&[("crates/a/src/store.rs", src)], "");
        assert_eq!(rules_of(&findings), vec!["L10"], "{findings:?}");
        let f = &findings[0];
        assert!(
            f.violation.message.contains("Store.a") && f.violation.message.contains("Store.b"),
            "cycle names both classes: {}",
            f.violation.message
        );
        assert_eq!(
            f.witness.len(),
            2,
            "one witness per cycle edge: {:?}",
            f.witness
        );
        assert!(
            f.witness.iter().any(|w| w.contains("a::store::Store::ab")),
            "{:?}",
            f.witness
        );
        assert!(
            f.witness.iter().any(|w| w.contains("a::store::Store::ba")),
            "{:?}",
            f.witness
        );
    }

    #[test]
    fn l10_consistent_order_is_clean() {
        let src = r#"
            pub struct Store { a: u32, b: u32 }
            impl Store {
                pub fn one(&self) {
                    let ga = self.a.lock();
                    let gb = self.b.lock();
                }
                pub fn two(&self) {
                    let ga = self.a.lock();
                    let gb = self.b.lock();
                }
            }
        "#;
        let findings = run(&[("crates/a/src/store.rs", src)], "");
        assert!(
            findings.is_empty(),
            "same order everywhere is fine: {findings:?}"
        );
    }

    #[test]
    fn l10_sees_through_gateway_helpers_and_callees() {
        // `grab` is a gateway (locks its parameter); `take_b` acquires B
        // behind a call. ab holds A while calling take_b; ba holds B then A.
        let src = r#"
            pub struct Store { a: u32, b: u32 }
            pub fn grab(m: &Mutex<u32>) -> u32 { m.lock() }
            impl Store {
                fn take_b(&self) -> u32 { grab(&self.b) }
                pub fn ab(&self) {
                    let ga = grab(&self.a);
                    let v = self.take_b();
                }
                pub fn ba(&self) {
                    let gb = grab(&self.b);
                    let ga = grab(&self.a);
                }
            }
        "#;
        let findings = run(&[("crates/a/src/store.rs", src)], "");
        assert_eq!(rules_of(&findings), vec!["L10"], "{findings:?}");
        let f = &findings[0];
        assert!(
            f.witness.iter().any(|w| w.contains("held across")),
            "call-mediated edge carries a via-witness: {:?}",
            f.witness
        );
    }

    #[test]
    fn l10_guard_dropped_before_second_lock_is_clean() {
        let src = r#"
            pub struct Store { a: u32, b: u32 }
            impl Store {
                pub fn ab(&self) {
                    let ga = self.a.lock();
                    drop(ga);
                    let gb = self.b.lock();
                }
                pub fn ba(&self) {
                    let gb = self.b.lock();
                    drop(gb);
                    let ga = self.a.lock();
                }
            }
        "#;
        let findings = run(&[("crates/a/src/store.rs", src)], "");
        assert!(
            findings.is_empty(),
            "explicit drop ends the guard region: {findings:?}"
        );
    }

    #[test]
    fn l11_fires_on_declared_source_with_chain() {
        let src = r#"
            use std::time::Instant;
            pub fn step() { helper(); }
            fn helper() { let t = Instant::now(); }
        "#;
        let config = "[[entry]]\nrule = \"L11\"\npattern = \"api::step\"\n\
                      [[source]]\nrule = \"L11\"\npattern = \"Instant::now\"\n";
        let findings = run(&[("crates/a/src/api.rs", src)], config);
        assert_eq!(rules_of(&findings), vec!["L11"], "{findings:?}");
        let f = &findings[0];
        assert!(
            f.violation.message.contains("api::helper"),
            "{}",
            f.violation.message
        );
        assert!(
            f.violation.message.contains("Instant::now"),
            "{}",
            f.violation.message
        );
        assert_eq!(f.witness.len(), 2, "step -> helper: {:?}", f.witness);
    }

    #[test]
    fn l11_hash_iter_source_uses_heuristic_line() {
        let src = r#"
            use std::collections::HashMap;
            pub fn step(m: &HashMap<u32, u32>) {
                for (k, v) in m.iter() { let _ = k + v; }
            }
        "#;
        let config = "[[entry]]\nrule = \"L11\"\npattern = \"api::step\"\n\
                      [[source]]\nrule = \"L11\"\npattern = \"hash-iter\"\n";
        let findings = run(&[("crates/a/src/api.rs", src)], config);
        assert_eq!(rules_of(&findings), vec!["L11"], "{findings:?}");
        assert!(
            findings[0]
                .violation
                .message
                .contains("unsorted HashMap/HashSet iteration"),
            "{}",
            findings[0].violation.message
        );
    }

    #[test]
    fn l11_entries_may_be_private_and_clean_graph_reports_nothing() {
        let src = r#"
            fn replay() { pure(); }
            fn pure() -> u32 { 7 }
        "#;
        let config = "[[entry]]\nrule = \"L11\"\npattern = \"api::replay\"\n\
                      [[source]]\nrule = \"L11\"\npattern = \"Instant::now\"\n";
        let findings = run(&[("crates/a/src/api.rs", src)], config);
        assert!(findings.is_empty(), "no sources reached: {findings:?}");
    }
}
