//! Machine-readable report output (`cargo lint -- --json` and
//! `--cost-report`).
//!
//! Hand-rolled serialization: the workspace is std-only, the schema is
//! small, and every value is either a count, a bool, or a string we escape
//! ourselves. The schema is documented in DESIGN.md §12/§14 and is
//! versioned — consumers should reject a `version` they don't know.
//! Schema v2 added the L12–L14 findings (no structural change — findings
//! are findings) and the `cost_report` block mirroring `HOTPATH.json`.

use std::path::Path;

use crate::cost_rules::HotRootStat;
use crate::Report;

/// Schema version emitted in every `--json` document.
pub const SCHEMA_VERSION: u32 = 2;

/// Schema tag emitted in every `HOTPATH.json` document.
pub const HOTPATH_SCHEMA: &str = "et-lint/hotpath-v1";

/// Renders the report as a single JSON document; returns the exit code
/// (same contract as [`crate::render`]: 0 clean, 1 findings or stale
/// allowlist entries).
pub fn render_json(report: &Report, allowlist_path: &Path, out: &mut impl std::io::Write) -> i32 {
    let mut s = String::new();
    s.push_str("{\n");
    push_kv(&mut s, 1, "version", &SCHEMA_VERSION.to_string(), true);
    push_kv(
        &mut s,
        1,
        "files_scanned",
        &report.files_scanned.to_string(),
        true,
    );
    push_kv(
        &mut s,
        1,
        "suppressed",
        &report.suppressed.to_string(),
        true,
    );
    push_kv(&mut s, 1, "graph_fns", &report.graph_fns.to_string(), true);
    push_kv(
        &mut s,
        1,
        "unresolved_calls",
        &report.unresolved_calls.to_string(),
        true,
    );
    s.push_str("  \"allowlist\": ");
    s.push_str(&quote(&allowlist_path.display().to_string()));
    s.push_str(",\n");

    s.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str("    {");
        s.push_str(&format!("\"rule\": {}, ", quote(f.violation.rule.id())));
        s.push_str(&format!("\"path\": {}, ", quote(&f.path)));
        s.push_str(&format!("\"line\": {}, ", f.violation.line));
        s.push_str(&format!("\"message\": {}, ", quote(&f.violation.message)));
        s.push_str(&format!("\"excerpt\": {}, ", quote(&f.violation.excerpt)));
        s.push_str("\"witness\": [");
        for (j, hop) in f.witness.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&quote(hop));
        }
        s.push_str("]}");
    }
    s.push_str(if report.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    s.push_str("  \"stale_allows\": [");
    for (k, &i) in report.stale_allows.iter().enumerate() {
        s.push_str(if k == 0 { "\n" } else { ",\n" });
        s.push_str(&format!("    {{\"index\": {}, \"suggestion\": ", i + 1));
        match report.stale_suggestions.get(k) {
            Some(Some(sugg)) => s.push_str(&quote(sugg)),
            _ => s.push_str("null"),
        }
        s.push('}');
    }
    s.push_str(if report.stale_allows.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    s.push_str("  \"cost_report\": [");
    for (i, stat) in report.hot_roots.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        push_hot_root(&mut s, 2, stat);
    }
    s.push_str(if report.hot_roots.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    s.push_str(&format!("  \"clean\": {}\n", report.is_clean()));
    s.push_str("}\n");
    let _ = out.write_all(s.as_bytes());
    if report.is_clean() {
        0
    } else {
        1
    }
}

/// Renders the standalone `HOTPATH.json` document (`--cost-report`): the
/// per-hot-root cost aggregates, nothing else. Deterministic — no
/// timestamps, no environment — so ci.sh can regenerate and byte-diff it
/// against the checked-in baseline.
pub fn render_hotpath(report: &Report, out: &mut impl std::io::Write) {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": {},\n", quote(HOTPATH_SCHEMA)));
    s.push_str("  \"hot_roots\": [");
    for (i, stat) in report.hot_roots.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        push_hot_root(&mut s, 2, stat);
    }
    s.push_str(if report.hot_roots.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    s.push_str("}\n");
    let _ = out.write_all(s.as_bytes());
}

/// Appends one hot-root aggregate object (shared by `--json`'s
/// `cost_report` block and `HOTPATH.json`).
fn push_hot_root(s: &mut String, indent: usize, stat: &HotRootStat) {
    let pad = "  ".repeat(indent);
    s.push_str(&pad);
    s.push_str("{\n");
    let field = |s: &mut String, body: String, comma: bool| {
        s.push_str(&pad);
        s.push_str("  ");
        s.push_str(&body);
        s.push_str(if comma { ",\n" } else { "\n" });
    };
    field(s, format!("\"pattern\": {}", quote(&stat.pattern)), true);
    let note = stat
        .note
        .as_deref()
        .map_or_else(|| "null".to_string(), quote);
    field(s, format!("\"note\": {note}"), true);
    let roots: Vec<String> = stat.roots.iter().map(|r| quote(r)).collect();
    field(s, format!("\"roots\": [{}]", roots.join(", ")), true);
    field(
        s,
        format!("\"reachable_fns\": {}", stat.reachable_fns),
        true,
    );
    field(
        s,
        format!(
            "\"cost_sites\": {{\"alloc\": {}, \"lock\": {}, \"io\": {}}}",
            stat.alloc_sites, stat.lock_sites, stat.io_sites
        ),
        true,
    );
    field(
        s,
        format!("\"witness_depth\": {}", stat.witness_depth),
        true,
    );
    s.push_str(&pad);
    s.push_str("  \"vetted\": [");
    for (i, v) in stat.vetted.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(&pad);
        s.push_str(&format!(
            "    {{\"kind\": {}, \"path\": {}, \"line\": {}, \"what\": {}, \"bound\": {}}}",
            quote(v.kind.key()),
            quote(&v.path),
            v.line,
            quote(&v.what),
            quote(&v.bound)
        ));
    }
    if stat.vetted.is_empty() {
        s.push_str("]\n");
    } else {
        s.push('\n');
        s.push_str(&pad);
        s.push_str("  ]\n");
    }
    s.push_str(&pad);
    s.push('}');
}

/// Appends `"key": value,\n` (value unquoted — numbers only).
fn push_kv(s: &mut String, indent: usize, key: &str, value: &str, comma: bool) {
    for _ in 0..indent {
        s.push_str("  ");
    }
    s.push('"');
    s.push_str(key);
    s.push_str("\": ");
    s.push_str(value);
    if comma {
        s.push(',');
    }
    s.push('\n');
}

/// JSON string literal with the minimal escape set (RFC 8259 §7).
fn quote(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len() + 2);
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if u32::from(c) < 0x20 => s.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost_rules::VettedSite;
    use crate::parser::CostKind;
    use crate::rules::{Rule, Violation};
    use crate::Finding;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                path: "crates/a/src/x.rs".into(),
                violation: Violation {
                    rule: Rule::L9,
                    line: 7,
                    message: "panic \"reachable\"".into(),
                    excerpt: "v.pop().unwrap()".into(),
                },
                witness: vec!["a::entry (crates/a/src/x.rs:1)".into()],
            }],
            suppressed: 2,
            stale_allows: vec![3],
            stale_suggestions: vec![Some("crates/a/src/moved.rs".into())],
            files_scanned: 5,
            graph_fns: 11,
            unresolved_calls: 4,
            hot_roots: vec![HotRootStat {
                pattern: "RelationMatrix::score_all".into(),
                note: Some("per-round scoring loop".into()),
                roots: vec!["et_fd::relmatrix::RelationMatrix::score_all".into()],
                reachable_fns: 4,
                alloc_sites: 1,
                lock_sites: 0,
                io_sites: 0,
                vetted: vec![VettedSite {
                    kind: CostKind::Alloc,
                    path: "crates/et-fd/src/relmatrix.rs".into(),
                    line: 42,
                    what: "Vec::with_capacity".into(),
                    bound: "bounded: one-time setup".into(),
                }],
                witness_depth: 2,
            }],
        }
    }

    #[test]
    fn document_round_trips_the_report() {
        let mut sink = Vec::new();
        let code = render_json(&sample(), std::path::Path::new("et-lint.toml"), &mut sink);
        assert_eq!(code, 1);
        let doc = String::from_utf8(sink).expect("utf8");
        for needle in [
            "\"version\": 2,",
            "\"files_scanned\": 5,",
            "\"graph_fns\": 11,",
            "\"unresolved_calls\": 4,",
            "\"rule\": \"L9\"",
            "\"line\": 7",
            "\"message\": \"panic \\\"reachable\\\"\"",
            "\"witness\": [\"a::entry (crates/a/src/x.rs:1)\"]",
            "{\"index\": 4, \"suggestion\": \"crates/a/src/moved.rs\"}",
            "\"pattern\": \"RelationMatrix::score_all\"",
            "\"cost_sites\": {\"alloc\": 1, \"lock\": 0, \"io\": 0}",
            "\"bound\": \"bounded: one-time setup\"",
            "\"clean\": false",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
    }

    #[test]
    fn hotpath_document_is_self_contained() {
        let mut sink = Vec::new();
        render_hotpath(&sample(), &mut sink);
        let doc = String::from_utf8(sink).expect("utf8");
        for needle in [
            "\"schema\": \"et-lint/hotpath-v1\"",
            "\"pattern\": \"RelationMatrix::score_all\"",
            "\"note\": \"per-round scoring loop\"",
            "\"roots\": [\"et_fd::relmatrix::RelationMatrix::score_all\"]",
            "\"reachable_fns\": 4",
            "\"witness_depth\": 2",
            "\"kind\": \"alloc\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
        assert!(
            !doc.contains("findings"),
            "the cost report carries no findings: {doc}"
        );
    }

    #[test]
    fn hotpath_without_roots_is_minimal() {
        let mut sink = Vec::new();
        render_hotpath(&Report::default(), &mut sink);
        let doc = String::from_utf8(sink).expect("utf8");
        assert!(doc.contains("\"hot_roots\": []"), "{doc}");
    }

    #[test]
    fn clean_report_exits_zero_with_empty_arrays() {
        let mut sink = Vec::new();
        let code = render_json(
            &Report::default(),
            std::path::Path::new("et-lint.toml"),
            &mut sink,
        );
        assert_eq!(code, 0);
        let doc = String::from_utf8(sink).expect("utf8");
        assert!(doc.contains("\"findings\": [],"), "{doc}");
        assert!(doc.contains("\"stale_allows\": [],"), "{doc}");
        assert!(doc.contains("\"clean\": true"), "{doc}");
    }

    #[test]
    fn quote_escapes_controls_and_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }
}
