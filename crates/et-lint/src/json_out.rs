//! Machine-readable report output (`cargo lint -- --json`).
//!
//! Hand-rolled serialization: the workspace is std-only, the schema is
//! small, and every value is either a count, a bool, or a string we escape
//! ourselves. The schema is documented in DESIGN.md §12 and is versioned —
//! consumers should reject a `version` they don't know.

use std::path::Path;

use crate::Report;

/// Schema version emitted in every document.
pub const SCHEMA_VERSION: u32 = 1;

/// Renders the report as a single JSON document; returns the exit code
/// (same contract as [`crate::render`]: 0 clean, 1 findings or stale
/// allowlist entries).
pub fn render_json(report: &Report, allowlist_path: &Path, out: &mut impl std::io::Write) -> i32 {
    let mut s = String::new();
    s.push_str("{\n");
    push_kv(&mut s, 1, "version", &SCHEMA_VERSION.to_string(), true);
    push_kv(
        &mut s,
        1,
        "files_scanned",
        &report.files_scanned.to_string(),
        true,
    );
    push_kv(
        &mut s,
        1,
        "suppressed",
        &report.suppressed.to_string(),
        true,
    );
    push_kv(&mut s, 1, "graph_fns", &report.graph_fns.to_string(), true);
    push_kv(
        &mut s,
        1,
        "unresolved_calls",
        &report.unresolved_calls.to_string(),
        true,
    );
    s.push_str("  \"allowlist\": ");
    s.push_str(&quote(&allowlist_path.display().to_string()));
    s.push_str(",\n");

    s.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str("    {");
        s.push_str(&format!("\"rule\": {}, ", quote(f.violation.rule.id())));
        s.push_str(&format!("\"path\": {}, ", quote(&f.path)));
        s.push_str(&format!("\"line\": {}, ", f.violation.line));
        s.push_str(&format!("\"message\": {}, ", quote(&f.violation.message)));
        s.push_str(&format!("\"excerpt\": {}, ", quote(&f.violation.excerpt)));
        s.push_str("\"witness\": [");
        for (j, hop) in f.witness.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&quote(hop));
        }
        s.push_str("]}");
    }
    s.push_str(if report.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    s.push_str("  \"stale_allows\": [");
    for (k, &i) in report.stale_allows.iter().enumerate() {
        s.push_str(if k == 0 { "\n" } else { ",\n" });
        s.push_str(&format!("    {{\"index\": {}, \"suggestion\": ", i + 1));
        match report.stale_suggestions.get(k) {
            Some(Some(sugg)) => s.push_str(&quote(sugg)),
            _ => s.push_str("null"),
        }
        s.push('}');
    }
    s.push_str(if report.stale_allows.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    s.push_str(&format!("  \"clean\": {}\n", report.is_clean()));
    s.push_str("}\n");
    let _ = out.write_all(s.as_bytes());
    if report.is_clean() {
        0
    } else {
        1
    }
}

/// Appends `"key": value,\n` (value unquoted — numbers only).
fn push_kv(s: &mut String, indent: usize, key: &str, value: &str, comma: bool) {
    for _ in 0..indent {
        s.push_str("  ");
    }
    s.push('"');
    s.push_str(key);
    s.push_str("\": ");
    s.push_str(value);
    if comma {
        s.push(',');
    }
    s.push('\n');
}

/// JSON string literal with the minimal escape set (RFC 8259 §7).
fn quote(raw: &str) -> String {
    let mut s = String::with_capacity(raw.len() + 2);
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if u32::from(c) < 0x20 => s.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Rule, Violation};
    use crate::Finding;

    fn sample() -> Report {
        Report {
            findings: vec![Finding {
                path: "crates/a/src/x.rs".into(),
                violation: Violation {
                    rule: Rule::L9,
                    line: 7,
                    message: "panic \"reachable\"".into(),
                    excerpt: "v.pop().unwrap()".into(),
                },
                witness: vec!["a::entry (crates/a/src/x.rs:1)".into()],
            }],
            suppressed: 2,
            stale_allows: vec![3],
            stale_suggestions: vec![Some("crates/a/src/moved.rs".into())],
            files_scanned: 5,
            graph_fns: 11,
            unresolved_calls: 4,
        }
    }

    #[test]
    fn document_round_trips_the_report() {
        let mut sink = Vec::new();
        let code = render_json(&sample(), std::path::Path::new("et-lint.toml"), &mut sink);
        assert_eq!(code, 1);
        let doc = String::from_utf8(sink).expect("utf8");
        for needle in [
            "\"version\": 1,",
            "\"files_scanned\": 5,",
            "\"graph_fns\": 11,",
            "\"unresolved_calls\": 4,",
            "\"rule\": \"L9\"",
            "\"line\": 7",
            "\"message\": \"panic \\\"reachable\\\"\"",
            "\"witness\": [\"a::entry (crates/a/src/x.rs:1)\"]",
            "{\"index\": 4, \"suggestion\": \"crates/a/src/moved.rs\"}",
            "\"clean\": false",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
    }

    #[test]
    fn clean_report_exits_zero_with_empty_arrays() {
        let mut sink = Vec::new();
        let code = render_json(
            &Report::default(),
            std::path::Path::new("et-lint.toml"),
            &mut sink,
        );
        assert_eq!(code, 0);
        let doc = String::from_utf8(sink).expect("utf8");
        assert!(doc.contains("\"findings\": [],"), "{doc}");
        assert!(doc.contains("\"stale_allows\": [],"), "{doc}");
        assert!(doc.contains("\"clean\": true"), "{doc}");
    }

    #[test]
    fn quote_escapes_controls_and_specials() {
        assert_eq!(quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }
}
