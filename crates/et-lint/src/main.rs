//! CLI for the workspace lint engine. See the library crate docs for the
//! rule catalogue; `cargo lint` is the aliased entry point.

use std::path::PathBuf;

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut cost_report = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                et_lint::list_rules(&mut std::io::stdout());
                return 0;
            }
            "--json" => {
                json = true;
            }
            "--cost-report" => {
                cost_report = true;
            }
            "--explain" => {
                let Some(id) = args.next() else {
                    eprintln!("et-lint: --explain needs a rule id (L1..L14)");
                    return 2;
                };
                let Some(rule) = et_lint::rules::Rule::from_id(&id) else {
                    eprintln!("et-lint: unknown rule `{id}` (try --list-rules)");
                    return 2;
                };
                println!("{} — {}\n\n{}", rule.id(), rule.describe(), rule.explain());
                return 0;
            }
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("et-lint: --root needs a directory argument");
                    return 2;
                };
                root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "et-lint — workspace lint engine (rules L1-L14)\n\n\
                     USAGE: et-lint [--root <workspace-dir>] [--json] \
                     [--cost-report] [--list-rules] [--explain <RULE>]\n\n\
                     --list-rules      one-line summary of every rule\n\
                     --explain L<N>    full rationale and the vetted-exception \
                     format for one rule\n\
                     --json            machine-readable report on stdout \
                     (schema in DESIGN.md §12)\n\
                     --cost-report     hot-path cost summary (HOTPATH.json \
                     schema, DESIGN.md §14) on stdout\n\n\
                     Exit codes: 0 clean, 1 violations or stale allowlist \
                     entries, 2 configuration error.\n\
                     Allowlist: et-lint.toml at the workspace root."
                );
                return 0;
            }
            other => {
                eprintln!("et-lint: unknown argument `{other}` (try --help)");
                return 2;
            }
        }
    }

    // Default to the workspace root: two levels above this crate's manifest
    // when invoked via `cargo run -p et-lint`, the current directory
    // otherwise.
    let root = root
        .or_else(|| std::env::var_os("CARGO_MANIFEST_DIR").map(|d| PathBuf::from(d).join("../..")))
        .unwrap_or_else(|| PathBuf::from("."));

    match et_lint::run(&root) {
        Ok(report) => {
            let allow = root.join("et-lint.toml");
            if cost_report {
                et_lint::json_out::render_hotpath(&report, &mut std::io::stdout());
                i32::from(!report.is_clean())
            } else if json {
                et_lint::json_out::render_json(&report, &allow, &mut std::io::stdout())
            } else {
                et_lint::render(&report, &allow, &mut std::io::stdout())
            }
        }
        Err(e) => {
            eprintln!("et-lint: {e}");
            2
        }
    }
}
