//! A std-only recursive-descent *item* parser on top of [`crate::lexer`]:
//! the substrate for the interprocedural rules L9–L14.
//!
//! The parser extracts exactly what the workspace call graph needs and
//! nothing more: modules, `fn` items (with visibility, parameters, and the
//! enclosing `impl`/`trait` type), call sites (method calls with a
//! best-effort receiver hint, path/bare calls, with the first argument's
//! field hint for lock-gateway attribution), panic-capable operations
//! (panic-family macros, `.unwrap()`/`.expect(`, index/slice expressions),
//! cost-bearing operations (allocation, lock/blocking, and I/O call sites,
//! for the hot-path tier), and `use` imports for bare-call expansion. `#[cfg(test)]` / `#[test]`
//! items are parsed but marked, so graph rules can skip them.
//!
//! Out of scope, deliberately: macro expansion, type inference, trait
//! solving. Anything the parser cannot classify degrades to an unresolved
//! call in [`crate::callgraph`], never to a wrong edge, by construction of
//! the resolution policy documented there.

use std::collections::BTreeMap;

use crate::lexer::{lex, Delim, TokenKind, TokenStream};

/// How a method call names its receiver.
#[derive(Debug, Clone, Default)]
pub struct Recv {
    /// The receiver chain starts at `self` (`self.x.m()`).
    pub is_self: bool,
    /// Nearest field/variable identifier before the method dot
    /// (`self.shards[i].lock()` → `shards`), skipping index brackets and
    /// call parens.
    pub hint: Option<String>,
}

/// What a call site invokes.
#[derive(Debug, Clone)]
pub enum Callee {
    /// `recv.name(…)`.
    Method {
        /// Method name.
        name: String,
        /// Receiver description.
        recv: Recv,
    },
    /// `a::b::name(…)` or a bare `name(…)` (one segment).
    Path {
        /// Path segments in source order, `use`-imports already expanded.
        segments: Vec<String>,
    },
}

impl Callee {
    /// Human-readable rendering used for unresolved buckets and taint
    /// source matching (`Instant::now`, `shards.lock`).
    pub fn render(&self) -> String {
        match self {
            Callee::Method { name, recv } => match &recv.hint {
                Some(h) => format!("{h}.{name}"),
                None if recv.is_self => format!("self.{name}"),
                None => format!(".{name}"),
            },
            Callee::Path { segments } => segments.join("::"),
        }
    }

    /// The final name segment (method name or last path segment).
    pub fn name(&self) -> &str {
        match self {
            Callee::Method { name, .. } => name,
            Callee::Path { segments } => segments.last().map_or("", |s| s.as_str()),
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// What is being called.
    pub callee: Callee,
    /// 1-based source line.
    pub line: usize,
    /// Trimmed source line text (for excerpts and allowlist patterns).
    pub line_text: String,
    /// Token index of the callee name (orders call sites within the body).
    pub tok: usize,
    /// Token index one past the region in which a guard returned by this
    /// call stays live: the enclosing block close for `let`-bound results
    /// (minus an explicit `drop(binding)`), the statement end otherwise.
    pub guard_end_tok: usize,
    /// Nearest field identifier inside the first argument
    /// (`lock(&self.parts)` → `parts`); lock-class attribution for calls
    /// into lock-gateway helpers.
    pub arg_hint: Option<String>,
    /// The first argument's chain mentions `self`.
    pub arg_is_self: bool,
}

/// Why a function can panic on its own (before looking at callees).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!`, `assert!`, `assert_eq!`, `assert_ne!`, `unreachable!`,
    /// `todo!`, `unimplemented!` (never the `debug_`-prefixed family).
    Macro,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `x[i]` index/slice expression (panics when out of bounds).
    Index,
}

impl PanicKind {
    /// Short label used in messages.
    pub fn label(self) -> &'static str {
        match self {
            PanicKind::Macro => "panic-family macro",
            PanicKind::Unwrap => "unwrap()",
            PanicKind::Expect => "expect()",
            PanicKind::Index => "index/slice expression",
        }
    }
}

/// One panic-capable operation inside a function body.
#[derive(Debug, Clone)]
pub struct PanicOp {
    /// What kind of operation.
    pub kind: PanicKind,
    /// Offending token text (`panic!`, `unwrap`, the indexed identifier).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
    /// Trimmed source line text.
    pub line_text: String,
}

/// Which cost class a cost-bearing operation belongs to (the tier-4
/// rules L12/L13/L14 map onto these one-to-one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CostKind {
    /// Heap allocation or growth (`Vec::new`, `vec!`, `format!`,
    /// `collect`, `clone`, push-family methods).
    Alloc,
    /// Lock acquisition (`.lock()`, `.read()`/`.write()` on lock-ish
    /// receivers) or a blocking call (`recv`, `join`, `sleep`, …).
    Lock,
    /// I/O or a syscall (`std::fs`/`std::net`/`std::io`, print-family
    /// macros, `sync_all`, `thread::spawn`).
    Io,
}

impl CostKind {
    /// Short label used in messages and the cost report.
    pub fn label(self) -> &'static str {
        match self {
            CostKind::Alloc => "heap allocation",
            CostKind::Lock => "lock/blocking call",
            CostKind::Io => "I/O or syscall",
        }
    }

    /// The JSON key used in `HOTPATH.json` per-root counters.
    pub fn key(self) -> &'static str {
        match self {
            CostKind::Alloc => "alloc",
            CostKind::Lock => "lock",
            CostKind::Io => "io",
        }
    }
}

/// One cost-bearing operation inside a function body (before looking at
/// callees; reachability is the cost rules' job).
#[derive(Debug, Clone)]
pub struct CostOp {
    /// Which cost class.
    pub kind: CostKind,
    /// Offending operation text (`format!`, `collect`, `Vec::new`).
    pub what: String,
    /// 1-based source line.
    pub line: usize,
    /// Trimmed source line text.
    pub line_text: String,
}

/// One parsed function item.
#[derive(Debug, Clone, Default)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Module path inside the file (inline `mod` nesting only; the
    /// file-derived part is prepended by the call graph).
    pub module_path: Vec<String>,
    /// Enclosing `impl`/`trait` type name, when any.
    pub self_type: Option<String>,
    /// Declared exactly `pub` (not `pub(crate)`/`pub(super)`).
    pub is_pub: bool,
    /// Covered by `#[cfg(test)]` / `#[test]` (directly or via an enclosing
    /// item).
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Trimmed signature line text.
    pub line_text: String,
    /// Parameter names (`self` included when present).
    pub params: Vec<String>,
    /// Call sites in source order.
    pub calls: Vec<CallSite>,
    /// Panic-capable operations in source order.
    pub panics: Vec<PanicOp>,
    /// Cost-bearing operations in source order (allocation, lock/blocking,
    /// I/O), consumed by the L12–L14 hot-path rules.
    pub costs: Vec<CostOp>,
    /// Line of the first unsorted hash-container iteration in the body
    /// (a `HashMap`/`HashSet` mention + an `iter`/`keys`/`values`/`drain`
    /// method call + no `sort*` call anywhere in the body), if any: the
    /// `hash-iter` taint source for L11.
    pub hash_iter_line: Option<usize>,
}

/// Everything the call graph needs from one file.
#[derive(Debug, Default)]
pub struct FileAst {
    /// All function items, nested ones included, in source order.
    pub fns: Vec<FnItem>,
    /// `use` imports: alias → full segment path (`BTreeMap` so downstream
    /// iteration order is deterministic).
    pub imports: BTreeMap<String, Vec<String>>,
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 16] = [
    "if", "while", "match", "for", "in", "as", "loop", "else", "break", "continue", "move", "ref",
    "mut", "let", "return", "where",
];

/// Panic-family macro names (the `debug_` variants compile out of release
/// builds and are deliberately excluded).
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Macros that allocate (`vec![…]`, `format!(…)`).
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// Macros that perform I/O (print family; `write!`/`writeln!` target a
/// writer, which in hot paths is never a plain in-memory buffer worth
/// distinguishing lexically).
const IO_MACROS: [&str; 7] = [
    "println", "eprintln", "print", "eprint", "write", "writeln", "dbg",
];

/// Method names that allocate or grow a heap container. Amortized-O(1)
/// growth (`push`/`extend`/`insert`) counts: a hot path must run at
/// steady-state capacity, and a vetted `[[allow]]` states that bound.
const ALLOC_METHODS: [&str; 16] = [
    "to_vec",
    "to_string",
    "to_owned",
    "clone",
    "cloned",
    "collect",
    "push",
    "push_str",
    "extend",
    "extend_from_slice",
    "append",
    "insert",
    "resize",
    "reserve",
    "repeat",
    "concat",
];

/// Method names that block the calling thread (the L5 blocking list plus
/// waits); classified under [`CostKind::Lock`] for L13.
const BLOCKING_METHODS: [&str; 9] = [
    "recv",
    "recv_timeout",
    "accept",
    "read_line",
    "join",
    "connect",
    "wait",
    "wait_timeout",
    "park",
];

/// Method names that perform I/O on their receiver.
const IO_METHODS: [&str; 8] = [
    "sync_all",
    "sync_data",
    "flush",
    "write_all",
    "read_to_string",
    "read_to_end",
    "read_exact",
    "spawn",
];

/// Path-call type heads whose constructor-family calls allocate.
const ALLOC_PATH_TYPES: [&str; 6] = ["Vec", "Box", "String", "VecDeque", "Rc", "Arc"];

/// Path heads that mean I/O or a syscall.
const IO_PATH_HEADS: [&str; 9] = [
    "fs",
    "net",
    "io",
    "File",
    "OpenOptions",
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "Command",
];

/// Method names treated as hash-container iteration starters.
const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Parses one file's source into its [`FileAst`].
pub fn parse(source: &str) -> FileAst {
    let ts = lex(source);
    Parser::new(&ts).run()
}

/// An open scope: a recognized `{ … }` region the parser tracks.
struct Scope {
    kind: ScopeKind,
    /// Depth carried by the scope's `Open(Brace)` token; the matching
    /// `Close(Brace)` carries the same depth, and no deeper tracked scope
    /// can share it while this one is open.
    open_depth: u32,
    is_test: bool,
}

enum ScopeKind {
    Mod(String),
    /// `impl T { … }`, `impl Trait for T { … }`, `trait T { … }`.
    Typed(String),
    Fn(usize),
}

/// Per-fn bookkeeping for the `hash-iter` taint-source heuristic.
#[derive(Debug, Default)]
struct HashIterState {
    mentions_hash: bool,
    first_iter_line: Option<usize>,
    sorted: bool,
}

struct Parser<'a, 'b> {
    ts: &'b TokenStream<'a>,
    fns: Vec<FnItem>,
    imports: BTreeMap<String, Vec<String>>,
    scopes: Vec<Scope>,
    pending_test: bool,
    hash_states: BTreeMap<usize, HashIterState>,
}

impl<'a, 'b> Parser<'a, 'b> {
    fn new(ts: &'b TokenStream<'a>) -> Self {
        Parser {
            ts,
            fns: Vec::new(),
            imports: BTreeMap::new(),
            scopes: Vec::new(),
            pending_test: false,
            hash_states: BTreeMap::new(),
        }
    }

    fn run(mut self) -> FileAst {
        let n = self.ts.tokens.len();
        let mut i = 0;
        while i < n {
            if !self.ts.is_code(i) {
                i += 1;
                continue;
            }
            let tok = self.ts.tokens[i];
            match tok.kind {
                TokenKind::Close(Delim::Brace) => {
                    if self
                        .scopes
                        .last()
                        .is_some_and(|s| s.open_depth == tok.depth)
                    {
                        self.scopes.pop();
                    }
                    i += 1;
                }
                TokenKind::Punct if self.ts.text(i) == "#" => {
                    i = self.attribute(i);
                }
                TokenKind::Open(Delim::Bracket) => {
                    if self.current_fn().is_some() {
                        self.index_op(i);
                    }
                    i += 1;
                }
                TokenKind::Ident => i = self.ident(i),
                _ => i += 1,
            }
        }
        self.seal_hash_states();
        FileAst {
            fns: self.fns,
            imports: self.imports,
        }
    }

    fn current_fn(&self) -> Option<usize> {
        self.scopes.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn(idx) => Some(idx),
            _ => None,
        })
    }

    fn current_type(&self) -> Option<&str> {
        self.scopes.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Typed(t) => Some(t.as_str()),
            _ => None,
        })
    }

    fn module_path(&self) -> Vec<String> {
        self.scopes
            .iter()
            .filter_map(|s| match &s.kind {
                ScopeKind::Mod(m) => Some(m.clone()),
                _ => None,
            })
            .collect()
    }

    fn in_test_scope(&self) -> bool {
        self.scopes.iter().any(|s| s.is_test)
    }

    /// Consumes an outer (`#[…]`) or inner (`#![…]`) attribute; outer
    /// attributes containing a bare `test` identifier (`#[test]`,
    /// `#[cfg(test)]`, nested `all`/`any` forms) set the pending-test flag
    /// for the next item. Skipping the whole group also keeps `cfg(…)`
    /// contents and derive lists out of call-site extraction.
    fn attribute(&mut self, hash: usize) -> usize {
        let Some(mut j) = self.ts.next_code(hash) else {
            return hash + 1;
        };
        let inner = self.ts.text(j) == "!";
        if inner {
            let Some(k) = self.ts.next_code(j) else {
                return j + 1;
            };
            j = k;
        }
        if self.ts.tokens[j].kind != TokenKind::Open(Delim::Bracket) {
            return hash + 1;
        }
        let close = self.matching_close(j);
        if !inner {
            let has_test = (j + 1..close).any(|k| {
                self.ts.is_code(k)
                    && self.ts.tokens[k].kind == TokenKind::Ident
                    && self.ts.text(k) == "test"
            });
            self.pending_test |= has_test;
        }
        close + 1
    }

    /// Index of the close delimiter matching the open delimiter at `open`
    /// (same depth, same family), or the last token on unbalanced input.
    fn matching_close(&self, open: usize) -> usize {
        let depth = self.ts.tokens[open].depth;
        let want = match self.ts.tokens[open].kind {
            TokenKind::Open(d) => TokenKind::Close(d),
            _ => return open,
        };
        (open + 1..self.ts.tokens.len())
            .find(|&k| self.ts.tokens[k].kind == want && self.ts.tokens[k].depth == depth)
            .unwrap_or(self.ts.tokens.len().saturating_sub(1))
    }

    /// Index of the open delimiter matching the close at `close`.
    fn matching_open(&self, close: usize) -> Option<usize> {
        let depth = self.ts.tokens[close].depth;
        let want = match self.ts.tokens[close].kind {
            TokenKind::Close(d) => TokenKind::Open(d),
            _ => return None,
        };
        (0..close)
            .rev()
            .find(|&k| self.ts.tokens[k].kind == want && self.ts.tokens[k].depth == depth)
    }

    fn ident(&mut self, i: usize) -> usize {
        let text = self.ts.text(i);
        match text {
            "mod" => self.item_mod(i),
            "impl" | "trait" => self.item_typed(i),
            "fn" => self.item_fn(i),
            "use" if self.current_fn().is_none() => self.item_use(i),
            _ if self.current_fn().is_some() => self.body_ident(i),
            _ => {
                // Any other item-level keyword consumes the pending
                // attribute flag so `#[test]` can't leak past one item.
                if matches!(
                    text,
                    "struct" | "enum" | "static" | "const" | "union" | "type"
                ) {
                    self.pending_test = false;
                }
                i + 1
            }
        }
    }

    fn item_mod(&mut self, kw: usize) -> usize {
        let test = self.pending_test || self.in_test_scope();
        self.pending_test = false;
        let Some(name_tok) = self.ts.next_code(kw) else {
            return kw + 1;
        };
        let name = self.ts.text(name_tok).to_string();
        match self.ts.next_code(name_tok) {
            Some(j) if self.ts.tokens[j].kind == TokenKind::Open(Delim::Brace) => {
                self.scopes.push(Scope {
                    kind: ScopeKind::Mod(name),
                    open_depth: self.ts.tokens[j].depth,
                    is_test: test,
                });
                j + 1
            }
            // `mod x;` file-module declaration, or something malformed.
            Some(j) => j + 1,
            None => kw + 1,
        }
    }

    /// Parses `impl … {` / `trait … {`: the implemented-on type is the
    /// first generic-depth-0 identifier after `for` when present, after
    /// the keyword otherwise; pushes a typed scope.
    fn item_typed(&mut self, kw: usize) -> usize {
        let test = self.pending_test || self.in_test_scope();
        self.pending_test = false;
        let item_depth = self.ts.tokens[kw].depth;
        let mut angle = 0i32;
        let mut candidate: Option<String> = None;
        let mut in_where = false;
        let mut j = kw + 1;
        while j < self.ts.tokens.len() {
            if !self.ts.is_code(j) {
                j += 1;
                continue;
            }
            let t = self.ts.tokens[j];
            if t.kind == TokenKind::Open(Delim::Brace) && t.depth == item_depth {
                break;
            }
            if t.kind == TokenKind::Punct && self.ts.text(j) == ";" && t.depth == item_depth {
                // Bodyless robustness path (not valid Rust, but never
                // trust input).
                return j + 1;
            }
            match t.kind {
                TokenKind::Punct => {
                    let txt = self.ts.text(j);
                    if txt == "<" {
                        angle += 1;
                    } else if txt == ">"
                        && !prev_is_adjacent(self.ts, j, "-")
                        && !prev_is_adjacent(self.ts, j, "=")
                    {
                        angle -= 1;
                    }
                }
                TokenKind::Ident if angle <= 0 => {
                    let txt = self.ts.text(j);
                    if txt == "for" {
                        candidate = None;
                    } else if txt == "where" {
                        in_where = true;
                    } else if !in_where
                        && candidate.is_none()
                        && !matches!(txt, "dyn" | "impl" | "trait" | "unsafe" | "const")
                    {
                        candidate = Some(txt.to_string());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j < self.ts.tokens.len() {
            self.scopes.push(Scope {
                kind: ScopeKind::Typed(candidate.unwrap_or_default()),
                open_depth: self.ts.tokens[j].depth,
                is_test: test,
            });
            return j + 1;
        }
        j
    }

    /// Parses a `fn` item: signature (name, visibility, params), then
    /// either pushes a body scope or skips a bodyless declaration.
    fn item_fn(&mut self, kw: usize) -> usize {
        let test = self.pending_test || self.in_test_scope();
        self.pending_test = false;
        let fn_depth = self.ts.tokens[kw].depth;
        let Some(name_tok) = self.ts.next_code(kw) else {
            return kw + 1;
        };
        if self.ts.tokens[name_tok].kind != TokenKind::Ident {
            // `fn(u32) -> u32` function-pointer type; not an item.
            return kw + 1;
        }
        let name = self.ts.text(name_tok).to_string();
        let line = self.ts.tokens[kw].line;

        // Walk the signature to find the body `{` (or `;` for bodyless
        // trait/extern declarations) at the fn's own depth. `<` carries no
        // lexer depth, so `{` cannot hide inside generics — but closure
        // bodies in default-argument positions cannot occur in signatures,
        // so the first same-depth `{` is the body.
        let mut body_open = None;
        let mut j = name_tok + 1;
        while j < self.ts.tokens.len() {
            if !self.ts.is_code(j) {
                j += 1;
                continue;
            }
            let t = self.ts.tokens[j];
            if t.depth == fn_depth {
                if t.kind == TokenKind::Open(Delim::Brace) {
                    body_open = Some(j);
                    break;
                }
                if t.kind == TokenKind::Punct && self.ts.text(j) == ";" {
                    break;
                }
            }
            j += 1;
        }

        let item = FnItem {
            name,
            module_path: self.module_path(),
            self_type: self.current_type().map(str::to_string),
            is_pub: self.fn_is_pub(kw),
            is_test: test,
            line,
            line_text: excerpt(self.ts.source, line),
            params: self.fn_params(name_tok, fn_depth),
            calls: Vec::new(),
            panics: Vec::new(),
            costs: Vec::new(),
            hash_iter_line: None,
        };
        let idx = self.fns.len();
        self.fns.push(item);

        // Hash containers named in the signature (`m: &HashMap<…>`) count
        // as mentions for the hash-iter heuristic: the body only sees the
        // parameter name.
        let sig_end = body_open.unwrap_or(j).min(self.ts.tokens.len());
        if (name_tok + 1..sig_end).any(|k| {
            self.ts.is_code(k)
                && self.ts.tokens[k].kind == TokenKind::Ident
                && matches!(self.ts.text(k), "HashMap" | "HashSet")
        }) {
            self.hash_state(idx).mentions_hash = true;
        }

        match body_open {
            Some(open) => {
                self.scopes.push(Scope {
                    kind: ScopeKind::Fn(idx),
                    open_depth: self.ts.tokens[open].depth,
                    is_test: test,
                });
                open + 1
            }
            None => j + 1,
        }
    }

    /// True when the `fn` at `kw` is declared exactly `pub` (walking back
    /// over `const`/`async`/`unsafe`/`extern "C"` modifiers).
    fn fn_is_pub(&self, kw: usize) -> bool {
        let mut j = kw;
        loop {
            let Some(p) = self.ts.prev_code(j) else {
                return false;
            };
            match (self.ts.tokens[p].kind, self.ts.text(p)) {
                (TokenKind::Ident, "const" | "async" | "unsafe" | "extern") => j = p,
                (TokenKind::Str, _) => j = p, // the "C" of `extern "C"`
                (TokenKind::Ident, "pub") => {
                    // Exactly `pub`, not `pub(crate)`/`pub(super)`.
                    return !self
                        .ts
                        .next_code(p)
                        .is_some_and(|n| self.ts.tokens[n].kind == TokenKind::Open(Delim::Paren));
                }
                _ => return false,
            }
        }
    }

    /// Parameter names: identifiers directly followed by `:` at the
    /// parameter-list paren depth, plus a bare/`&`-qualified `self`.
    fn fn_params(&self, name_tok: usize, fn_depth: u32) -> Vec<String> {
        let mut out = Vec::new();
        // Find the parameter `(`, skipping `<…>` generics — angle brackets
        // carry no lexer depth, so `Fn(u32)` bounds inside generics would
        // otherwise masquerade as the parameter list.
        let mut angle = 0i32;
        let mut j = name_tok + 1;
        let open = loop {
            if j >= self.ts.tokens.len() {
                return out;
            }
            if self.ts.is_code(j) {
                let t = self.ts.tokens[j];
                let txt = self.ts.text(j);
                if t.kind == TokenKind::Punct && txt == "<" {
                    angle += 1;
                } else if t.kind == TokenKind::Punct
                    && txt == ">"
                    && !prev_is_adjacent(self.ts, j, "-")
                    && !prev_is_adjacent(self.ts, j, "=")
                {
                    angle -= 1;
                } else if t.kind == TokenKind::Open(Delim::Paren)
                    && t.depth == fn_depth
                    && angle <= 0
                {
                    break j;
                } else if t.kind == TokenKind::Open(Delim::Brace) && t.depth == fn_depth {
                    return out; // malformed: body before params
                }
            }
            j += 1;
        };
        let close = self.matching_close(open);
        let inner_depth = self.ts.tokens[open].depth + 1;
        for k in open + 1..close {
            if !self.ts.is_code(k)
                || self.ts.tokens[k].kind != TokenKind::Ident
                || self.ts.tokens[k].depth != inner_depth
            {
                continue;
            }
            let txt = self.ts.text(k);
            if txt == "self" {
                out.push("self".to_string());
                continue;
            }
            if txt == "mut" {
                continue;
            }
            if self
                .ts
                .next_code(k)
                .is_some_and(|n| self.ts.text(n) == ":" && !next_is_adjacent(self.ts, n, ":"))
            {
                out.push(txt.to_string());
            }
        }
        out
    }

    fn item_use(&mut self, kw: usize) -> usize {
        self.pending_test = false;
        let depth = self.ts.tokens[kw].depth;
        let mut end = kw + 1;
        while end < self.ts.tokens.len() {
            let t = self.ts.tokens[end];
            if self.ts.is_code(end)
                && t.kind == TokenKind::Punct
                && self.ts.text(end) == ";"
                && t.depth == depth
            {
                break;
            }
            end += 1;
        }
        self.collect_use(kw + 1, end, &[]);
        end + 1
    }

    /// Recursively collects import leaves in `lo..hi` under `prefix`:
    /// `{…}` groups fork the prefix, `as` renames, `*` globs are dropped.
    fn collect_use(&mut self, lo: usize, hi: usize, prefix: &[String]) {
        let mut segs: Vec<String> = prefix.to_vec();
        let mut alias: Option<String> = None;
        let mut k = lo;
        while k < hi {
            if !self.ts.is_code(k) {
                k += 1;
                continue;
            }
            match self.ts.tokens[k].kind {
                TokenKind::Ident => {
                    let txt = self.ts.text(k).to_string();
                    if txt == "as" {
                        if let Some(n) = self.ts.next_code(k) {
                            alias = Some(self.ts.text(n).to_string());
                            k = n + 1;
                            continue;
                        }
                    } else {
                        segs.push(txt);
                    }
                    k += 1;
                }
                TokenKind::Open(Delim::Brace) => {
                    let close = self.matching_close(k);
                    // Split the group body on top-level commas and recurse;
                    // the group terminates this path — nothing to flush.
                    let inner_prefix = segs.clone();
                    let group_depth = self.ts.tokens[k].depth + 1;
                    let mut part_lo = k + 1;
                    for c in k + 1..close {
                        if self.ts.is_code(c)
                            && self.ts.tokens[c].kind == TokenKind::Punct
                            && self.ts.text(c) == ","
                            && self.ts.tokens[c].depth == group_depth
                        {
                            self.collect_use(part_lo, c, &inner_prefix);
                            part_lo = c + 1;
                        }
                    }
                    self.collect_use(part_lo, close, &inner_prefix);
                    return;
                }
                TokenKind::Punct if self.ts.text(k) == "," => {
                    self.flush_use(&mut segs, &mut alias, prefix.len());
                    k += 1;
                }
                _ => k += 1,
            }
        }
        self.flush_use(&mut segs, &mut alias, prefix.len());
    }

    /// Records one completed import path and resets to the prefix length.
    fn flush_use(&mut self, segs: &mut Vec<String>, alias: &mut Option<String>, keep: usize) {
        if segs.len() > keep {
            let name = alias
                .take()
                .or_else(|| segs.last().cloned())
                .unwrap_or_default();
            if !name.is_empty() && name != "*" {
                self.imports.insert(name, segs.clone());
            }
        }
        segs.truncate(keep);
        *alias = None;
    }

    /// Handles an identifier inside a fn body: call sites, panic macros,
    /// `.unwrap()`/`.expect(`, and the hash-iter bookkeeping.
    fn body_ident(&mut self, i: usize) -> usize {
        let Some(fn_idx) = self.current_fn() else {
            return i + 1;
        };
        let text = self.ts.text(i).to_string();
        let Some(next) = self.ts.next_code(i) else {
            return i + 1;
        };

        // Macro invocation `name!(…)` / `name![…]` / `name!{…}`.
        if self.ts.text(next) == "!" && next_is_open(self.ts, next) {
            let line = self.ts.tokens[i].line;
            if PANIC_MACROS.contains(&text.as_str()) {
                self.push_panic(fn_idx, PanicKind::Macro, &format!("{text}!"), line);
            } else if ALLOC_MACROS.contains(&text.as_str()) {
                self.push_cost(fn_idx, CostKind::Alloc, &format!("{text}!"), line);
            } else if IO_MACROS.contains(&text.as_str()) {
                self.push_cost(fn_idx, CostKind::Io, &format!("{text}!"), line);
            }
            return i + 1;
        }

        if self.ts.tokens[next].kind != TokenKind::Open(Delim::Paren) {
            if text == "HashMap" || text == "HashSet" {
                self.hash_state(fn_idx).mentions_hash = true;
            }
            return i + 1;
        }
        if NON_CALL_KEYWORDS.contains(&text.as_str()) {
            return i + 1;
        }

        let line = self.ts.tokens[i].line;
        let prev_is_dot = self
            .ts
            .prev_code(i)
            .is_some_and(|p| self.ts.text(p) == "." && !prev_is_adjacent(self.ts, p, "."));

        if prev_is_dot {
            match text.as_str() {
                "unwrap" => self.push_panic(fn_idx, PanicKind::Unwrap, &text, line),
                "expect" => self.push_panic(fn_idx, PanicKind::Expect, &text, line),
                _ => {}
            }
            if HASH_ITER_METHODS.contains(&text.as_str()) {
                let st = self.hash_state(fn_idx);
                if st.first_iter_line.is_none() {
                    st.first_iter_line = Some(line);
                }
            }
            if text.contains("sort") {
                self.hash_state(fn_idx).sorted = true;
            }
            let recv = self.receiver(i);
            self.method_cost(fn_idx, &text, &recv, line);
            self.push_call(fn_idx, Callee::Method { name: text, recv }, i, next, line);
        } else {
            let segments = self.path_segments(i);
            self.path_cost(fn_idx, &segments, line);
            self.push_call(fn_idx, Callee::Path { segments }, i, next, line);
        }
        i + 1
    }

    /// Classifies a method call's cost class, if any, and records it.
    /// `.read()`/`.write()` count as lock acquisition only when the
    /// receiver hint looks like a lock (the L5/L10 attribution heuristic);
    /// on anything else they are reader/writer calls L14 has no opinion on
    /// without a receiver type.
    fn method_cost(&mut self, fn_idx: usize, name: &str, recv: &Recv, line: usize) {
        let lockish = recv.hint.as_deref().is_some_and(|h| {
            let h = h.to_ascii_lowercase();
            h.contains("lock") || h.contains("mutex") || h.starts_with("rw")
        });
        let kind = if name == "lock"
            || ((name == "read" || name == "write") && lockish)
            || BLOCKING_METHODS.contains(&name)
        {
            Some(CostKind::Lock)
        } else if ALLOC_METHODS.contains(&name) {
            Some(CostKind::Alloc)
        } else if IO_METHODS.contains(&name) {
            Some(CostKind::Io)
        } else {
            None
        };
        if let Some(kind) = kind {
            self.push_cost(fn_idx, kind, name, line);
        }
    }

    /// Classifies a path call's cost class, if any, and records it.
    fn path_cost(&mut self, fn_idx: usize, segments: &[String], line: usize) {
        let segs: Vec<&str> = segments.iter().map(String::as_str).collect();
        let rest: &[&str] = if segs.first() == Some(&"std") {
            &segs[1..]
        } else {
            &segs[..]
        };
        if rest.len() < 2 {
            return;
        }
        let (head, last) = (rest[0], rest[rest.len() - 1]);
        let what = segments.join("::");
        if head == "thread" {
            match last {
                "sleep" | "park" => self.push_cost(fn_idx, CostKind::Lock, &what, line),
                "spawn" => self.push_cost(fn_idx, CostKind::Io, &what, line),
                _ => {}
            }
            return;
        }
        if ALLOC_PATH_TYPES.contains(&head)
            && matches!(
                last,
                "new" | "with_capacity" | "from" | "from_iter" | "from_elem"
            )
        {
            self.push_cost(fn_idx, CostKind::Alloc, &what, line);
            return;
        }
        if IO_PATH_HEADS.contains(&head) {
            self.push_cost(fn_idx, CostKind::Io, &what, line);
        }
    }

    fn push_cost(&mut self, fn_idx: usize, kind: CostKind, what: &str, line: usize) {
        self.fns[fn_idx].costs.push(CostOp {
            kind,
            what: what.to_string(),
            line,
            line_text: excerpt(self.ts.source, line),
        });
    }

    fn push_panic(&mut self, fn_idx: usize, kind: PanicKind, what: &str, line: usize) {
        self.fns[fn_idx].panics.push(PanicOp {
            kind,
            what: what.to_string(),
            line,
            line_text: excerpt(self.ts.source, line),
        });
    }

    /// `x[i]` / `foo()[i]` / `x[i][j]` index expressions (panic-capable).
    /// Array types/literals, attributes, slice patterns, and macro
    /// brackets never match: their `[` is not preceded by an identifier or
    /// a closing delimiter.
    fn index_op(&mut self, open: usize) {
        let Some(fn_idx) = self.current_fn() else {
            return;
        };
        let Some(p) = self.ts.prev_code(open) else {
            return;
        };
        let indexable = match self.ts.tokens[p].kind {
            TokenKind::Ident => {
                let t = self.ts.text(p);
                !NON_CALL_KEYWORDS.contains(&t) && !matches!(t, "dyn" | "impl" | "self")
            }
            TokenKind::Close(Delim::Paren) | TokenKind::Close(Delim::Bracket) => true,
            _ => false,
        };
        if !indexable {
            return;
        }
        let what = if self.ts.tokens[p].kind == TokenKind::Ident {
            self.ts.text(p).to_string()
        } else {
            "(..)".to_string()
        };
        let line = self.ts.tokens[open].line;
        self.fns[fn_idx].panics.push(PanicOp {
            kind: PanicKind::Index,
            what,
            line,
            line_text: excerpt(self.ts.source, line),
        });
    }

    /// Walks the receiver chain left of the `.` before method token `m`.
    fn receiver(&self, m: usize) -> Recv {
        let mut recv = Recv::default();
        let Some(dot) = self.ts.prev_code(m) else {
            return recv;
        };
        let mut j = match self.ts.prev_code(dot) {
            Some(j) => j,
            None => return recv,
        };
        // True when the previous hop crossed `::` rather than `.`: in
        // `Type::ctor(..).method()` the type name is the better hint than
        // the constructor name.
        let mut via_path = false;
        loop {
            match self.ts.tokens[j].kind {
                TokenKind::Close(Delim::Paren) | TokenKind::Close(Delim::Bracket) => {
                    let Some(open) = self.matching_open(j) else {
                        return recv;
                    };
                    match self.ts.prev_code(open) {
                        Some(p) => j = p,
                        None => return recv,
                    }
                }
                TokenKind::Ident => {
                    let txt = self.ts.text(j);
                    if txt == "self" {
                        recv.is_self = true;
                        return recv;
                    }
                    if recv.hint.is_none()
                        || (via_path && txt.starts_with(|c: char| c.is_ascii_uppercase()))
                    {
                        recv.hint = Some(txt.to_string());
                    }
                    // Continue left across `.` or `::`.
                    let Some(p) = self.ts.prev_code(j) else {
                        return recv;
                    };
                    if self.ts.text(p) == "." && !prev_is_adjacent(self.ts, p, ".") {
                        via_path = false;
                        match self.ts.prev_code(p) {
                            Some(pp) => j = pp,
                            None => return recv,
                        }
                    } else if self.ts.text(p) == ":" && prev_is_adjacent(self.ts, p, ":") {
                        via_path = true;
                        let Some(c2) = self.ts.prev_code(p) else {
                            return recv;
                        };
                        match self.ts.prev_code(c2) {
                            Some(pp) => j = pp,
                            None => return recv,
                        }
                    } else {
                        return recv;
                    }
                }
                TokenKind::Punct if self.ts.text(j) == "?" => match self.ts.prev_code(j) {
                    Some(p) => j = p,
                    None => return recv,
                },
                _ => return recv,
            }
        }
    }

    /// Collects `a::b::name` path segments ending at the name token `i`,
    /// expanding the first segment through the file's `use` imports.
    fn path_segments(&self, i: usize) -> Vec<String> {
        let mut segs = vec![self.ts.text(i).to_string()];
        let mut j = i;
        while let Some(c1) = self.ts.prev_code(j) {
            if !(self.ts.text(c1) == ":" && prev_is_adjacent(self.ts, c1, ":")) {
                break;
            }
            let Some(c2) = self.ts.prev_code(c1) else {
                break;
            };
            let Some(p) = self.ts.prev_code(c2) else {
                break;
            };
            if self.ts.tokens[p].kind == TokenKind::Ident {
                segs.insert(0, self.ts.text(p).to_string());
                j = p;
            } else {
                break;
            }
        }
        // Expand the head through imports: `use a::b::c;` + `c::f()` →
        // `a::b::c::f`.
        if let Some(full) = self.imports.get(&segs[0]) {
            let mut expanded = full.clone();
            expanded.extend(segs.drain(1..));
            segs = expanded;
        }
        segs
    }

    fn push_call(
        &mut self,
        fn_idx: usize,
        callee: Callee,
        name_tok: usize,
        open: usize,
        line: usize,
    ) {
        let (arg_hint, arg_is_self) = self.first_arg_hint(open);
        let guard_end_tok = self.guard_scope_end(name_tok);
        self.fns[fn_idx].calls.push(CallSite {
            callee,
            line,
            line_text: excerpt(self.ts.source, line),
            tok: name_tok,
            guard_end_tok,
            arg_hint,
            arg_is_self,
        });
    }

    /// The last field identifier of the first argument (index brackets and
    /// nested call parens skipped), plus whether the chain mentions `self`.
    fn first_arg_hint(&self, open: usize) -> (Option<String>, bool) {
        let close = self.matching_close(open);
        let arg_depth = self.ts.tokens[open].depth + 1;
        let mut hint: Option<String> = None;
        let mut is_self = false;
        let mut k = open + 1;
        while k < close {
            if !self.ts.is_code(k) {
                k += 1;
                continue;
            }
            let t = self.ts.tokens[k];
            if t.kind == TokenKind::Punct && self.ts.text(k) == "," && t.depth == arg_depth {
                break;
            }
            match t.kind {
                TokenKind::Ident => {
                    let txt = self.ts.text(k);
                    if txt == "self" {
                        is_self = true;
                    } else {
                        hint = Some(txt.to_string());
                    }
                    k += 1;
                }
                TokenKind::Open(Delim::Bracket) | TokenKind::Open(Delim::Paren) => {
                    k = self.matching_close(k) + 1;
                }
                _ => k += 1,
            }
        }
        (hint, is_self)
    }

    /// Token index one past the region where a guard returned by the call
    /// at `name_tok` stays live: the enclosing block close for `let`-bound
    /// results whose chain preserves the guard, cut short by an explicit
    /// `drop(binding)`; the statement end otherwise.
    fn guard_scope_end(&self, name_tok: usize) -> usize {
        let mut stmt_start = self.ts.statement_start(name_tok);
        // `statement_start` can land on a leading comment token.
        while stmt_start < name_tok && !self.ts.is_code(stmt_start) {
            stmt_start += 1;
        }
        let stmt_end = self.ts.statement_end(name_tok);
        if self.ts.text(stmt_start) != "let" {
            return stmt_end;
        }
        // `let v = lock(&m).deref_chain()` consumes the guard within the
        // statement — unless the chain is a guard-preserving
        // `.unwrap()`/`.expect(…)` tail.
        if let Some(open) = self.ts.next_code(name_tok) {
            if self.ts.tokens[open].kind == TokenKind::Open(Delim::Paren) {
                let close = self.matching_close(open);
                if let Some(n) = self.ts.next_code(close) {
                    if self.ts.text(n) == "." {
                        let keeps_guard = self
                            .ts
                            .next_code(n)
                            .is_some_and(|m| matches!(self.ts.text(m), "unwrap" | "expect"));
                        if !keeps_guard {
                            return stmt_end;
                        }
                    }
                }
            }
        }
        // Binding name: first identifier after `let` (skipping `mut`).
        let mut b = stmt_start + 1;
        while b < self.ts.tokens.len() && (!self.ts.is_code(b) || self.ts.text(b) == "mut") {
            b += 1;
        }
        let binding = (b < self.ts.tokens.len() && self.ts.tokens[b].kind == TokenKind::Ident)
            .then(|| self.ts.text(b));
        let block_close = self.ts.enclosing_block_close(stmt_start);
        if let Some(name) = binding {
            for k in stmt_end..block_close.min(self.ts.tokens.len()) {
                if self.ts.is_code(k)
                    && self.ts.text(k) == "drop"
                    && self.ts.matches_seq(k + 1, &["(", name])
                {
                    return k;
                }
            }
        }
        block_close
    }

    fn hash_state(&mut self, fn_idx: usize) -> &mut HashIterState {
        self.hash_states.entry(fn_idx).or_default()
    }

    /// Resolves the hash-iter heuristic for every fn once parsing is done
    /// (mention, iteration, and `sort*` evidence can arrive in any order).
    fn seal_hash_states(&mut self) {
        for (fn_idx, st) in &self.hash_states {
            if st.mentions_hash && !st.sorted {
                if let Some(f) = self.fns.get_mut(*fn_idx) {
                    f.hash_iter_line = st.first_iter_line;
                }
            }
        }
    }
}

/// True when token `j`'s previous raw token is the punct `what` and
/// byte-adjacent to it (multi-byte operators lex as adjacent `Punct`s).
fn prev_is_adjacent(ts: &TokenStream<'_>, j: usize, what: &str) -> bool {
    j > 0 && ts.text(j - 1) == what && ts.tokens[j - 1].end == ts.tokens[j].start
}

/// True when token `j`'s next raw token is the punct `what`, byte-adjacent.
fn next_is_adjacent(ts: &TokenStream<'_>, j: usize, what: &str) -> bool {
    ts.tokens
        .get(j + 1)
        .is_some_and(|t| t.start == ts.tokens[j].end)
        && ts.text(j + 1) == what
}

/// True when the token after `j` opens any delimiter group (macro bodies).
fn next_is_open(ts: &TokenStream<'_>, j: usize) -> bool {
    ts.tokens
        .get(j + 1)
        .is_some_and(|t| matches!(t.kind, TokenKind::Open(_)))
}

/// The trimmed text of 1-based `line` in `source`.
fn excerpt(source: &str, line: usize) -> String {
    source
        .lines()
        .nth(line.saturating_sub(1))
        .unwrap_or_default()
        .trim()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(ast: &FileAst) -> Vec<&str> {
        ast.fns.iter().map(|f| f.name.as_str()).collect()
    }

    #[test]
    fn fns_modules_and_impls_are_scoped() {
        let src = r#"
            pub fn top() {}
            mod inner {
                pub(crate) fn helper() {}
                impl Widget {
                    pub fn poke(&self) {}
                    fn quiet() {}
                }
            }
            trait Act {
                fn go(&self);
                fn act_default(&self) { self.go(); }
            }
        "#;
        let ast = parse(src);
        assert_eq!(
            names(&ast),
            ["top", "helper", "poke", "quiet", "go", "act_default"]
        );
        let top = &ast.fns[0];
        assert!(top.is_pub && top.module_path.is_empty() && top.self_type.is_none());
        let helper = &ast.fns[1];
        assert!(!helper.is_pub, "pub(crate) is not plain pub");
        assert_eq!(helper.module_path, ["inner"]);
        let poke = &ast.fns[2];
        assert!(poke.is_pub);
        assert_eq!(poke.self_type.as_deref(), Some("Widget"));
        assert_eq!(poke.module_path, ["inner"]);
        assert_eq!(poke.params, ["self"]);
        let go = &ast.fns[4];
        assert_eq!(go.self_type.as_deref(), Some("Act"));
        assert!(go.calls.is_empty(), "bodyless decl has no calls");
        let dflt = &ast.fns[5];
        assert_eq!(dflt.calls.len(), 1);
        assert!(matches!(
            &dflt.calls[0].callee,
            Callee::Method { name, recv } if name == "go" && recv.is_self
        ));
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let src = "impl<T: Clone> Display for Grid<T> { fn fmt(&self) {} }";
        let ast = parse(src);
        assert_eq!(ast.fns[0].self_type.as_deref(), Some("Grid"));
    }

    #[test]
    fn test_markers_propagate() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                fn support() {}
                #[test]
                fn case() {}
            }
            #[test]
            fn naked_case() {}
            #[cfg(feature = "latest")]
            fn not_a_test() {}
        "#;
        let ast = parse(src);
        let by_name = |n: &str| ast.fns.iter().find(|f| f.name == n).expect("fn present");
        assert!(by_name("support").is_test, "enclosing cfg(test) mod");
        assert!(by_name("case").is_test);
        assert!(by_name("naked_case").is_test);
        assert!(
            !by_name("not_a_test").is_test,
            "`latest` must not substring-match `test`"
        );
    }

    #[test]
    fn calls_methods_paths_and_imports() {
        let src = r#"
            use std::time::Instant;
            use crate::cache::{lock as grab, PartitionCache};
            fn f(&self) {
                let t = Instant::now();
                let g = grab(&self.parts);
                self.shards[idx].clear();
                free_standing(t);
            }
        "#;
        let ast = parse(src);
        let f = &ast.fns[0];
        let rendered: Vec<String> = f.calls.iter().map(|c| c.callee.render()).collect();
        assert!(
            rendered.contains(&"std::time::Instant::now".to_string()),
            "import-expanded path call: {rendered:?}"
        );
        assert!(
            rendered.contains(&"crate::cache::lock".to_string()),
            "aliased import expands: {rendered:?}"
        );
        assert!(
            rendered.contains(&"shards.clear".to_string()),
            "{rendered:?}"
        );
        assert!(
            rendered.contains(&"free_standing".to_string()),
            "{rendered:?}"
        );
        let grab = f
            .calls
            .iter()
            .find(|c| c.callee.name() == "lock")
            .expect("grab call");
        assert_eq!(grab.arg_hint.as_deref(), Some("parts"));
        assert!(grab.arg_is_self);
        // Method on an indexed self field: receiver walks over `[idx]`.
        let clear = f
            .calls
            .iter()
            .find(|c| c.callee.name() == "clear")
            .expect("clear call");
        assert!(matches!(
            &clear.callee,
            Callee::Method { recv, .. } if recv.is_self && recv.hint.as_deref() == Some("shards")
        ));
    }

    #[test]
    fn panic_ops_are_collected() {
        let src = r#"
            fn f(v: &[u32], m: Option<u32>) -> u32 {
                if v.is_empty() { panic!("empty"); }
                debug_assert!(v.len() > 1);
                let first = v[0];
                let second = m.unwrap();
                let third = m.expect("third");
                first + second + third
            }
            fn clean(v: &[u32]) -> Option<&u32> { v.first() }
        "#;
        let ast = parse(src);
        let f = &ast.fns[0];
        let kinds: Vec<PanicKind> = f.panics.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            [
                PanicKind::Macro,
                PanicKind::Index,
                PanicKind::Unwrap,
                PanicKind::Expect
            ],
            "debug_assert! is excluded; order is source order"
        );
        assert!(ast.fns[1].panics.is_empty());
    }

    #[test]
    fn index_op_ignores_types_literals_and_macros() {
        let src = r#"
            fn f() {
                let a: [u8; 4] = [0; 4];
                let v = vec![1, 2, 3];
                let s: &[u32] = &[];
                let t = (a, v, s);
            }
        "#;
        let ast = parse(src);
        assert!(ast.fns[0].panics.is_empty(), "got {:?}", ast.fns[0].panics);
    }

    #[test]
    fn guard_scope_let_vs_temporary() {
        let src = r#"
            fn f(&self) {
                let g = lock(&self.parts);
                g.insert(1);
                lock(&self.owners).remove(&2);
                after();
            }
        "#;
        let ast = parse(src);
        let f = &ast.fns[0];
        let locks: Vec<&CallSite> = f
            .calls
            .iter()
            .filter(|c| c.callee.name() == "lock")
            .collect();
        assert_eq!(locks.len(), 2);
        let after_tok = f
            .calls
            .iter()
            .find(|c| c.callee.name() == "after")
            .expect("after call")
            .tok;
        assert!(
            locks[0].guard_end_tok > after_tok,
            "let-bound guard lives to end of block"
        );
        assert!(
            locks[1].guard_end_tok <= after_tok,
            "temporary guard dies at statement end (region is exclusive)"
        );
    }

    #[test]
    fn guard_scope_drop_cuts_liveness() {
        let src = r#"
            fn f(&self) {
                let g = lock(&self.parts);
                g.insert(1);
                drop(g);
                after();
            }
        "#;
        let ast = parse(src);
        let f = &ast.fns[0];
        let lock = f
            .calls
            .iter()
            .find(|c| c.callee.name() == "lock")
            .expect("lock");
        let after_tok = f
            .calls
            .iter()
            .find(|c| c.callee.name() == "after")
            .expect("after")
            .tok;
        assert!(
            lock.guard_end_tok < after_tok,
            "drop(g) ends the guard region before after()"
        );
    }

    #[test]
    fn hash_iter_heuristic() {
        let src = r#"
            fn tainted(m: &HashMap<u32, u32>) -> Vec<u32> {
                m.keys().copied().collect()
            }
            fn sorted_ok(m: &HashMap<u32, u32>) -> Vec<u32> {
                let mut v: Vec<u32> = m.keys().copied().collect();
                v.sort_unstable();
                v
            }
            fn no_hash(v: &[u32]) -> Vec<u32> {
                v.iter().copied().collect()
            }
        "#;
        let ast = parse(src);
        let by_name = |n: &str| ast.fns.iter().find(|f| f.name == n).expect("fn present");
        assert!(by_name("tainted").hash_iter_line.is_some());
        assert!(
            by_name("sorted_ok").hash_iter_line.is_none(),
            "sort clears taint"
        );
        assert!(by_name("no_hash").hash_iter_line.is_none());
    }

    #[test]
    fn generic_fn_bounds_do_not_eat_params() {
        let src = "fn apply<F: Fn(u32) -> u32>(input: u32, op: F) -> u32 { op(input) }";
        let ast = parse(src);
        assert_eq!(ast.fns[0].params, ["input", "op"]);
    }

    #[test]
    fn use_groups_and_globs() {
        let src = r#"
            use std::collections::{BTreeMap, HashMap as Map};
            use crate::session::*;
            fn f() { let m = Map::new(); }
        "#;
        let ast = parse(src);
        assert_eq!(
            ast.imports.get("Map").map(Vec::as_slice),
            Some(
                &[
                    "std".to_string(),
                    "collections".to_string(),
                    "HashMap".to_string()
                ][..]
            )
        );
        assert_eq!(
            ast.imports.get("BTreeMap").map(Vec::len),
            Some(3),
            "group members keep the shared prefix"
        );
        assert!(!ast.imports.contains_key("*"), "globs are dropped");
        let new_call = &ast.fns[0].calls[0];
        assert_eq!(new_call.callee.render(), "std::collections::HashMap::new");
    }

    fn cost_kinds(f: &FnItem) -> Vec<(CostKind, &str)> {
        f.costs.iter().map(|c| (c.kind, c.what.as_str())).collect()
    }

    #[test]
    fn alloc_ops_are_tagged() {
        let src = r#"
            fn f(xs: &[u64]) -> Vec<u64> {
                let mut v = Vec::with_capacity(xs.len());
                let s = format!("{}", xs.len());
                let t = xs.to_vec();
                let c: Vec<u64> = xs.iter().copied().collect();
                v.push(s.len() as u64);
                v
            }
        "#;
        let ast = parse(src);
        let kinds = cost_kinds(&ast.fns[0]);
        for what in ["Vec::with_capacity", "format!", "to_vec", "collect", "push"] {
            assert!(
                kinds.contains(&(CostKind::Alloc, what)),
                "{what} missing from {kinds:?}"
            );
        }
        assert!(
            !kinds.iter().any(|(k, _)| *k != CostKind::Alloc),
            "pure-alloc body must not tag lock/io: {kinds:?}"
        );
    }

    #[test]
    fn lock_and_blocking_ops_are_tagged() {
        let src = r#"
            fn f(&self) {
                let g = self.shard_lock.lock();
                let r = self.state_rwlock.read();
                let x = self.rx.recv_timeout(ms);
                std::thread::sleep(ms);
            }
            fn reader_is_not_a_lock(&self) {
                let n = self.file.read(&mut buf);
            }
        "#;
        let ast = parse(src);
        let kinds = cost_kinds(&ast.fns[0]);
        for what in ["lock", "read", "recv_timeout", "std::thread::sleep"] {
            assert!(
                kinds.contains(&(CostKind::Lock, what)),
                "{what} missing from {kinds:?}"
            );
        }
        assert!(
            ast.fns[1].costs.is_empty(),
            ".read() on a non-lock receiver is not an acquisition"
        );
    }

    #[test]
    fn io_ops_are_tagged() {
        let src = r#"
            use std::fs;
            fn f(path: &str) {
                let data = fs::read_to_string(path);
                println!("{}", path.len());
                file.sync_all();
                std::thread::spawn(work);
            }
        "#;
        let ast = parse(src);
        let kinds = cost_kinds(&ast.fns[0]);
        for what in [
            "std::fs::read_to_string",
            "println!",
            "sync_all",
            "std::thread::spawn",
        ] {
            assert!(
                kinds.contains(&(CostKind::Io, what)),
                "{what} missing from {kinds:?}"
            );
        }
    }

    #[test]
    fn cost_free_body_stays_clean() {
        let src = r#"
            fn fold(&self, acc: u64, w: u64) -> u64 {
                let masked = w & self.mask;
                acc + masked.count_ones() as u64
            }
        "#;
        let ast = parse(src);
        assert!(ast.fns[0].costs.is_empty(), "{:?}", ast.fns[0].costs);
    }
}
