//! A hand-rolled Rust lexer: the substrate for the token-level rules
//! (L5–L8) that line/mask scanning cannot express.
//!
//! The lexer is std-only like the rest of the crate and deliberately
//! smaller than rustc's: it produces a flat [`Token`] stream with byte
//! spans, 1-based lines, and a delimiter-nesting depth per token, plus
//! the handful of navigation helpers the rules need (statement bounds,
//! enclosing-block close). Comments are *kept* as tokens (L6 reads
//! trailing `// ord:` justifications); string/char contents are opaque
//! single tokens, so no rule ever fires on prose.
//!
//! Out of scope, harmlessly: macro expansion, type inference, and exotic
//! literals (`c"…"` C strings) — files using them still lex, the tokens
//! just degrade to punctuation + strings.

/// Delimiter kind for [`TokenKind::Open`]/[`TokenKind::Close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `{` / `}`
    Brace,
    /// `(` / `)`
    Paren,
    /// `[` / `]`
    Bracket,
}

/// What one token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// `'a` lifetime (not a char literal).
    Lifetime,
    /// Integer literal, suffix included (`42`, `0xFF`, `7u64`).
    Int,
    /// Float literal, suffix included (`0.5`, `1e-9`, `2f64`).
    Float,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// `'x'` or `b'x'` char literal.
    Char,
    /// `// …` through end of line (newline excluded).
    LineComment,
    /// `/* … */`, nesting handled.
    BlockComment,
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
    /// One punctuation byte (`.`, `:`, `=`, …). Multi-byte operators are
    /// adjacent `Punct` tokens; rules match them by span adjacency.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: usize,
    /// Delimiter-nesting depth at the token: a token inside one `{ … }`
    /// or `( … )` has depth 1. `Open`/`Close` tokens carry the *outer*
    /// depth (the depth of the block they delimit).
    pub depth: u32,
}

/// A lexed file: the source plus its token stream.
pub struct TokenStream<'a> {
    /// The original source text.
    pub source: &'a str,
    /// Tokens in source order, comments included.
    pub tokens: Vec<Token>,
}

impl<'a> TokenStream<'a> {
    /// The source text of token `i`.
    pub fn text(&self, i: usize) -> &'a str {
        let t = &self.tokens[i];
        &self.source[t.start..t.end]
    }

    /// True when token `i` is not a comment.
    pub fn is_code(&self, i: usize) -> bool {
        !matches!(
            self.tokens[i].kind,
            TokenKind::LineComment | TokenKind::BlockComment
        )
    }

    /// Index of the next non-comment token after `i`.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        (i + 1..self.tokens.len()).find(|&j| self.is_code(j))
    }

    /// Index of the previous non-comment token before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| self.is_code(j))
    }

    /// True when tokens `i..i+needles.len()` are exactly `needles`
    /// (comparing source text, comments break the match).
    pub fn matches_seq(&self, i: usize, needles: &[&str]) -> bool {
        needles.iter().enumerate().all(|(k, n)| {
            self.tokens
                .get(i + k)
                .is_some_and(|_| self.is_code(i + k) && self.text(i + k) == *n)
        })
    }

    /// Index just past the statement containing token `i`: the token after
    /// the first `;` at the same depth, or the token closing the enclosing
    /// block when the statement is a tail expression.
    pub fn statement_end(&self, i: usize) -> usize {
        let depth = self.tokens[i].depth;
        let mut j = i;
        while j < self.tokens.len() {
            let t = &self.tokens[j];
            // Leaving the enclosing block ends the statement (tail expr).
            // Same-depth `Close` tokens belong to groups opened *inside*
            // the statement and are traversed.
            if t.depth < depth {
                return j;
            }
            if t.depth == depth && t.kind == TokenKind::Punct && self.text(j) == ";" {
                return j + 1;
            }
            j += 1;
        }
        j
    }

    /// Index of the first token of the statement containing token `i`:
    /// walks back to just after the previous `;`, `{`, or `}` at the same
    /// depth.
    pub fn statement_start(&self, i: usize) -> usize {
        let depth = self.tokens[i].depth;
        let mut j = i;
        while j > 0 {
            let t = &self.tokens[j - 1];
            // Boundaries: the enclosing block's `{` (lower depth), a prior
            // `;`, or the `}` of a preceding block statement. Same-depth
            // `)` / `]` are internal to this statement and traversed.
            if t.depth < depth
                || (t.depth == depth
                    && (t.kind == TokenKind::Close(Delim::Brace)
                        || (t.kind == TokenKind::Punct && self.text(j - 1) == ";")))
            {
                return j;
            }
            j -= 1;
        }
        0
    }

    /// Index of the `Close(Brace)` token ending the innermost brace block
    /// containing token `i`, or `tokens.len()` when `i` is at top level.
    pub fn enclosing_block_close(&self, i: usize) -> usize {
        let depth = self.tokens[i].depth;
        if depth == 0 {
            return self.tokens.len();
        }
        (i + 1..self.tokens.len())
            .find(|&j| self.tokens[j].depth < depth && self.is_close_brace(j))
            .unwrap_or(self.tokens.len())
    }

    fn is_close_brace(&self, j: usize) -> bool {
        matches!(self.tokens[j].kind, TokenKind::Close(Delim::Brace))
    }
}

/// Lexes `source` into a token stream.
pub fn lex(source: &str) -> TokenStream<'_> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    let mut depth = 0u32;

    // A `#!…` shebang at byte 0 is one opaque line comment: a `'` or `"`
    // inside the interpreter path must not open a char/string state, and
    // its span must stay contiguous for the span-coverage invariant.
    // `#![…]` is an inner attribute, not a shebang, and lexes normally.
    if bytes.starts_with(b"#!") && bytes.get(2) != Some(&b'[') {
        while i < bytes.len() && bytes[i] != b'\n' {
            i += 1;
        }
        push(&mut tokens, TokenKind::LineComment, 0, i, 1, 0);
    }

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        let start = i;
        let start_line = line;

        if b == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if b == b'/' && next == Some(b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            push(
                &mut tokens,
                TokenKind::LineComment,
                start,
                i,
                start_line,
                depth,
            );
            continue;
        }
        if b == b'/' && next == Some(b'*') {
            let mut nest = 1u32;
            i += 2;
            while i < bytes.len() && nest > 0 {
                if bytes[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    nest += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    nest -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            push(
                &mut tokens,
                TokenKind::BlockComment,
                start,
                i,
                start_line,
                depth,
            );
            continue;
        }

        // String-family literals, longest prefix first: br#"…"#, br"…",
        // b"…", r#"…"#, r"…", "…".
        if let Some((len, newlines)) = str_literal_len(bytes, i) {
            i += len;
            line += newlines;
            push(&mut tokens, TokenKind::Str, start, i, start_line, depth);
            continue;
        }

        // Byte char `b'x'` — consumed before ident so `b` doesn't lex alone.
        if b == b'b' && next == Some(b'\'') {
            if let Some(len) = char_literal_len(bytes, i + 1) {
                i += 1 + len;
                push(&mut tokens, TokenKind::Char, start, i, start_line, depth);
                continue;
            }
        }

        // Char literal vs lifetime.
        if b == b'\'' {
            if let Some(len) = char_literal_len(bytes, i) {
                i += len;
                push(&mut tokens, TokenKind::Char, start, i, start_line, depth);
            } else {
                i += 1;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                push(
                    &mut tokens,
                    TokenKind::Lifetime,
                    start,
                    i,
                    start_line,
                    depth,
                );
            }
            continue;
        }

        // Identifiers (incl. raw `r#ident`; raw strings were consumed above).
        if is_ident_start(b) {
            i += 1;
            if b == b'r' && next == Some(b'#') {
                i += 1; // the '#'
            }
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            push(&mut tokens, TokenKind::Ident, start, i, start_line, depth);
            continue;
        }

        // Numeric literals.
        if b.is_ascii_digit() {
            let (len, kind) = number_len(bytes, i);
            i += len;
            push(&mut tokens, kind, start, i, start_line, depth);
            continue;
        }

        // Delimiters and punctuation.
        let kind = match b {
            b'{' => Some((TokenKind::Open(Delim::Brace), true)),
            b'(' => Some((TokenKind::Open(Delim::Paren), true)),
            b'[' => Some((TokenKind::Open(Delim::Bracket), true)),
            b'}' => Some((TokenKind::Close(Delim::Brace), false)),
            b')' => Some((TokenKind::Close(Delim::Paren), false)),
            b']' => Some((TokenKind::Close(Delim::Bracket), false)),
            _ => None,
        };
        match kind {
            Some((k, true)) => {
                push(&mut tokens, k, start, i + 1, start_line, depth);
                depth += 1;
            }
            Some((k, false)) => {
                depth = depth.saturating_sub(1);
                push(&mut tokens, k, start, i + 1, start_line, depth);
            }
            None => push(
                &mut tokens,
                TokenKind::Punct,
                start,
                i + 1,
                start_line,
                depth,
            ),
        }
        i += 1;
    }

    TokenStream { source, tokens }
}

fn push(
    tokens: &mut Vec<Token>,
    kind: TokenKind,
    start: usize,
    end: usize,
    line: usize,
    depth: u32,
) {
    tokens.push(Token {
        kind,
        start,
        end,
        line,
        depth,
    });
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length and newline count of a string-family literal starting at `i`, or
/// `None` when `i` does not start one. Handles `"…"`, `r"…"`, `r#"…"#`,
/// `b"…"`, `br"…"`, `br##"…"##` with escapes in the cooked forms.
fn str_literal_len(bytes: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    let mut raw = false;
    if bytes.get(j) == Some(&b'b') {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    // `b` / `r` prefixes only count when they belong to this literal, not
    // to a preceding identifier (`let xr = "…"` must lex `xr` first).
    if j > i && i > 0 && is_ident_continue(bytes[i - 1]) {
        return None;
    }
    j += 1; // opening quote
    let mut newlines = 0usize;
    while j < bytes.len() {
        match bytes[j] {
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            b'\\' if !raw => {
                j += 2;
            }
            b'"' => {
                if raw {
                    if (0..hashes).all(|h| bytes.get(j + 1 + h) == Some(&b'#')) {
                        return Some((j + 1 + hashes - i, newlines));
                    }
                    j += 1;
                } else {
                    return Some((j + 1 - i, newlines));
                }
            }
            _ => j += 1,
        }
    }
    // Unterminated: consume to EOF so the lexer always terminates.
    Some((j - i, newlines))
}

/// Length of a char literal starting at the `'` at `i`, or `None` when the
/// quote starts a lifetime.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let second = *bytes.get(i + 1)?;
    if second == b'\\' {
        let mut k = i + 2;
        while k < bytes.len() && bytes[k] != b'\'' && bytes[k] != b'\n' {
            k += 1;
        }
        if bytes.get(k) == Some(&b'\'') {
            return Some(k - i + 1);
        }
        return None;
    }
    if second == b'\'' {
        return None; // `''` is not a char literal
    }
    let first_len = utf8_len(second);
    let k = i + 1 + first_len;
    if bytes.get(k) == Some(&b'\'') {
        Some(k - i + 1)
    } else {
        None
    }
}

fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

/// Length and kind of a numeric literal starting at digit `i`.
fn number_len(bytes: &[u8], i: usize) -> (usize, TokenKind) {
    let mut j = i;
    let mut float = false;
    if bytes[i] == b'0' && matches!(bytes.get(i + 1), Some(b'x' | b'o' | b'b')) {
        j += 2;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (j - i, TokenKind::Int);
    }
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
        j += 1;
    }
    // Fraction: a `.` followed by a digit, or a lone trailing `.` that is
    // not a range (`1..n`) or method call (`1.max(2)`).
    if bytes.get(j) == Some(&b'.') {
        match bytes.get(j + 1) {
            Some(d) if d.is_ascii_digit() => {
                float = true;
                j += 1;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                    j += 1;
                }
            }
            Some(c) if *c == b'.' || is_ident_start(*c) => {}
            _ => {
                float = true;
                j += 1;
            }
        }
    }
    // Exponent.
    if matches!(bytes.get(j), Some(b'e' | b'E')) {
        let mut k = j + 1;
        if matches!(bytes.get(k), Some(b'+' | b'-')) {
            k += 1;
        }
        if bytes.get(k).is_some_and(u8::is_ascii_digit) {
            float = true;
            j = k;
            while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
                j += 1;
            }
        }
    }
    // Suffix (`u64`, `f32`, …).
    let suffix_start = j;
    while j < bytes.len() && is_ident_continue(bytes[j]) {
        j += 1;
    }
    let suffix = &bytes[suffix_start..j];
    if suffix.starts_with(b"f") {
        float = true;
    }
    (
        j - i,
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let ts = lex(src);
        (0..ts.tokens.len())
            .map(|i| (ts.tokens[i].kind, ts.text(i).to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let ts = lex("let x = a.b();");
        let texts: Vec<&str> = (0..ts.tokens.len()).map(|i| ts.text(i)).collect();
        assert_eq!(texts, ["let", "x", "=", "a", ".", "b", "(", ")", ";"]);
    }

    #[test]
    fn numbers_int_vs_float() {
        for (src, kind) in [
            ("42", TokenKind::Int),
            ("0xFF_u64", TokenKind::Int),
            ("7u64", TokenKind::Int),
            ("0.5", TokenKind::Float),
            ("1e-9", TokenKind::Float),
            ("2f64", TokenKind::Float),
            ("12.", TokenKind::Float),
        ] {
            let ts = lex(src);
            assert_eq!(ts.tokens.len(), 1, "{src}");
            assert_eq!(ts.tokens[0].kind, kind, "{src}");
            assert_eq!(ts.text(0), src, "{src}");
        }
        // Range and method-call dots do not glue onto the int.
        assert_eq!(kinds("0..n").len(), 4);
        assert_eq!(kinds("1.max(2)")[0].0, TokenKind::Int);
    }

    #[test]
    fn string_family_is_one_opaque_token() {
        for src in [
            "\"plain unwrap()\"",
            "r\"raw\"",
            "r#\"with \" quote\"#",
            "r##\"nested \"# still\"##",
            "b\"bytes\"",
            "br#\"raw bytes \" here\"#",
        ] {
            let ts = lex(src);
            assert_eq!(ts.tokens.len(), 1, "{src} -> {:?}", kinds(src));
            assert_eq!(ts.tokens[0].kind, TokenKind::Str, "{src}");
            assert_eq!(ts.text(0), src, "{src}");
        }
    }

    #[test]
    fn ident_ending_in_r_or_b_does_not_eat_a_string() {
        let ts = lex("xr\"s\"");
        assert_eq!(ts.tokens[0].kind, TokenKind::Ident);
        assert_eq!(ts.text(0), "xr");
        assert_eq!(ts.tokens[1].kind, TokenKind::Str);
    }

    #[test]
    fn chars_bytes_and_lifetimes() {
        let ts = lex("fn f<'a>(c: char) { let q = '\"'; let b = b'x'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = (0..ts.tokens.len())
            .filter(|&i| ts.tokens[i].kind == TokenKind::Lifetime)
            .map(|i| ts.text(i))
            .collect();
        assert_eq!(lifetimes, ["'a"]);
        let chars: Vec<&str> = (0..ts.tokens.len())
            .filter(|&i| ts.tokens[i].kind == TokenKind::Char)
            .map(|i| ts.text(i))
            .collect();
        assert_eq!(chars, ["'\"'", "b'x'", "'\\n'"]);
    }

    #[test]
    fn char_with_quote_does_not_derail_strings() {
        // The '"' char literal must not open a string state.
        let ts = lex("let q = '\"'; x.unwrap();");
        let unwraps = (0..ts.tokens.len())
            .filter(|&i| ts.text(i) == "unwrap")
            .count();
        assert_eq!(unwraps, 1);
    }

    #[test]
    fn comments_kept_as_tokens_nested_blocks() {
        let src = "a(); // ord: Relaxed ok\n/* outer /* inner */ end */ b();";
        let ts = lex(src);
        let comments: Vec<(TokenKind, &str)> = (0..ts.tokens.len())
            .filter(|&i| !ts.is_code(i))
            .map(|i| (ts.tokens[i].kind, ts.text(i)))
            .collect();
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].0, TokenKind::LineComment);
        assert!(comments[0].1.contains("ord:"));
        assert_eq!(comments[1].0, TokenKind::BlockComment);
        assert!(comments[1].1.ends_with("end */"));
    }

    #[test]
    fn lines_and_depth_tracked() {
        let src = "fn f() {\n    g(\n        h());\n}\n";
        let ts = lex(src);
        let g = (0..ts.tokens.len())
            .find(|&i| ts.text(i) == "g")
            .expect("g");
        let h = (0..ts.tokens.len())
            .find(|&i| ts.text(i) == "h")
            .expect("h");
        assert_eq!(ts.tokens[g].line, 2);
        assert_eq!(ts.tokens[h].line, 3);
        assert_eq!(ts.tokens[g].depth, 1, "inside fn body");
        assert_eq!(ts.tokens[h].depth, 2, "inside call parens");
    }

    #[test]
    fn statement_and_block_navigation() {
        let src = "fn f() { let a = x(); a.go(); }";
        let ts = lex(src);
        let let_tok = (0..ts.tokens.len())
            .find(|&i| ts.text(i) == "let")
            .expect("let");
        let end = ts.statement_end(let_tok);
        assert_eq!(ts.text(end), "a", "first token of next statement");
        assert_eq!(ts.statement_start(end), end);
        let close = ts.enclosing_block_close(let_tok);
        assert_eq!(ts.tokens[close].kind, TokenKind::Close(Delim::Brace));
    }

    #[test]
    fn raw_ident_lexes_whole() {
        let ts = lex("r#type");
        assert_eq!(ts.tokens.len(), 1);
        assert_eq!(ts.tokens[0].kind, TokenKind::Ident);
        assert_eq!(ts.text(0), "r#type");
    }

    #[test]
    fn shebang_is_one_line_comment() {
        // The apostrophe and quote in the shebang must not open char/string
        // states; the code after it must lex normally with correct lines.
        let src = "#!/usr/bin/env weird's \"driver\"\nfn main() { x.unwrap(); }\n";
        let ts = lex(src);
        assert_eq!(ts.tokens[0].kind, TokenKind::LineComment);
        assert_eq!(ts.text(0), "#!/usr/bin/env weird's \"driver\"");
        assert_eq!(ts.tokens[0].line, 1);
        let f = (0..ts.tokens.len())
            .find(|&i| ts.text(i) == "fn")
            .expect("fn");
        assert_eq!(ts.tokens[f].line, 2);
        let unwraps = (0..ts.tokens.len())
            .filter(|&i| ts.text(i) == "unwrap")
            .count();
        assert_eq!(unwraps, 1);
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        // `#![…]` at byte 0 lexes as `#`, `!`, `[`, …: four code tokens at
        // minimum, with contiguous in-order spans (pinned for the parser,
        // which skips inner attributes token-wise).
        let src = "#![allow(dead_code)]\nfn f() {}\n";
        let ts = lex(src);
        let texts: Vec<&str> = (0..6).map(|i| ts.text(i)).collect();
        assert_eq!(texts, ["#", "!", "[", "allow", "(", "dead_code"]);
        for w in ts.tokens.windows(2) {
            assert!(w[0].end <= w[1].start, "spans must not overlap");
        }
    }

    #[test]
    fn shebang_then_inner_attribute_spans_cover_source() {
        let src = "#!/usr/bin/env cargo\n#![deny(missing_docs)]\nfn f() {}\n";
        let ts = lex(src);
        assert_eq!(ts.tokens[0].kind, TokenKind::LineComment);
        // Every non-whitespace byte is covered by exactly one token span.
        let mut covered = vec![false; src.len()];
        for t in &ts.tokens {
            for c in covered.iter_mut().take(t.end).skip(t.start) {
                assert!(!*c, "overlapping spans");
                *c = true;
            }
        }
        for (i, b) in src.bytes().enumerate() {
            if !b.is_ascii_whitespace() {
                assert!(covered[i], "byte {i} ({:?}) uncovered", b as char);
            }
        }
    }

    #[test]
    fn unterminated_string_terminates_lexer() {
        let ts = lex("let s = \"oops");
        assert_eq!(ts.tokens.last().map(|t| t.kind), Some(TokenKind::Str));
    }
}
