//! Source masking: blanks out the contents of comments, string literals, and
//! char literals so token-level rules never fire on prose.
//!
//! The mask preserves byte length and every newline, so byte offsets and line
//! numbers computed on the masked text are valid for the original.

/// The two masked views of one source file.
pub struct Masked {
    /// Strings, chars, and comments blanked.
    pub code: String,
    /// Strings and chars blanked, comments kept (doc-comment rules need
    /// comment text, but must not see tokens inside string literals).
    pub with_comments: String,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment { depth: u32 },
    Str,
    RawStr { hashes: u32 },
}

/// Replaces every masked byte with a space, keeping `\n` so line structure
/// survives. Handles nested block comments, escapes, raw strings, and the
/// lifetime-vs-char-literal ambiguity.
pub fn mask(source: &str) -> Masked {
    let bytes = source.as_bytes();
    let mut code: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut with_comments: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;

    // Pushes a byte through the mask filter for both views.
    let put = |code: &mut Vec<u8>, wc: &mut Vec<u8>, b: u8, in_comment: bool, in_string: bool| {
        let keep_nl = b == b'\n';
        if in_string {
            code.push(if keep_nl { b'\n' } else { b' ' });
            wc.push(if keep_nl { b'\n' } else { b' ' });
        } else if in_comment {
            code.push(if keep_nl { b'\n' } else { b' ' });
            wc.push(b);
        } else {
            code.push(b);
            wc.push(b);
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match b {
                b'/' if next == Some(b'/') => {
                    state = State::LineComment;
                    put(&mut code, &mut with_comments, b, true, false);
                    i += 1;
                }
                b'/' if next == Some(b'*') => {
                    state = State::BlockComment { depth: 1 };
                    put(&mut code, &mut with_comments, b, true, false);
                    i += 1;
                }
                b'"' => {
                    state = State::Str;
                    // The delimiter itself stays visible.
                    put(&mut code, &mut with_comments, b, false, false);
                    i += 1;
                }
                b'r' if matches!(next, Some(b'"' | b'#'))
                    && !prev_is_ident(bytes, i)
                    && raw_str_hashes(bytes, i + 1).is_some() =>
                {
                    let hashes = raw_str_hashes(bytes, i + 1).unwrap_or(0);
                    put(&mut code, &mut with_comments, b, false, false);
                    i += 1;
                    for _ in 0..=hashes {
                        // hashes then the opening quote
                        if i < bytes.len() {
                            put(&mut code, &mut with_comments, bytes[i], false, false);
                            i += 1;
                        }
                    }
                    state = State::RawStr { hashes };
                    continue;
                }
                b'b' if next == Some(b'"') && !prev_is_ident(bytes, i) => {
                    put(&mut code, &mut with_comments, b, false, false);
                    i += 1;
                    put(&mut code, &mut with_comments, bytes[i], false, false);
                    i += 1;
                    state = State::Str;
                    continue;
                }
                // Raw byte strings `br"…"` / `br##"…"##`: raw semantics, no
                // escape processing (a lone `\` must not eat the closing quote).
                b'b' if next == Some(b'r')
                    && !prev_is_ident(bytes, i)
                    && raw_str_hashes(bytes, i + 2).is_some() =>
                {
                    let hashes = raw_str_hashes(bytes, i + 2).unwrap_or(0);
                    put(&mut code, &mut with_comments, b, false, false);
                    i += 1;
                    put(&mut code, &mut with_comments, bytes[i], false, false);
                    i += 1;
                    for _ in 0..=hashes {
                        // hashes then the opening quote
                        if i < bytes.len() {
                            put(&mut code, &mut with_comments, bytes[i], false, false);
                            i += 1;
                        }
                    }
                    state = State::RawStr { hashes };
                    continue;
                }
                b'\'' => {
                    if let Some(len) = char_literal_len(bytes, i) {
                        // Opening quote visible, contents masked, closing visible.
                        put(&mut code, &mut with_comments, b, false, false);
                        for k in 1..len - 1 {
                            put(&mut code, &mut with_comments, bytes[i + k], false, true);
                        }
                        put(&mut code, &mut with_comments, b'\'', false, false);
                        i += len;
                        continue;
                    }
                    // A lifetime; pass through.
                    put(&mut code, &mut with_comments, b, false, false);
                    i += 1;
                }
                _ => {
                    put(&mut code, &mut with_comments, b, false, false);
                    i += 1;
                }
            },
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                }
                put(&mut code, &mut with_comments, b, true, false);
                i += 1;
            }
            State::BlockComment { depth } => {
                if b == b'*' && next == Some(b'/') {
                    put(&mut code, &mut with_comments, b, true, false);
                    put(&mut code, &mut with_comments, b'/', true, false);
                    i += 2;
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment { depth: depth - 1 };
                    }
                } else if b == b'/' && next == Some(b'*') {
                    put(&mut code, &mut with_comments, b, true, false);
                    put(&mut code, &mut with_comments, b'*', true, false);
                    i += 2;
                    state = State::BlockComment { depth: depth + 1 };
                } else {
                    put(&mut code, &mut with_comments, b, true, false);
                    i += 1;
                }
            }
            State::Str => match b {
                b'\\' => {
                    put(&mut code, &mut with_comments, b, false, true);
                    if let Some(n) = next {
                        put(&mut code, &mut with_comments, n, false, true);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                b'"' => {
                    put(&mut code, &mut with_comments, b, false, false);
                    state = State::Code;
                    i += 1;
                }
                _ => {
                    put(&mut code, &mut with_comments, b, false, true);
                    i += 1;
                }
            },
            State::RawStr { hashes } => {
                if b == b'"' && closes_raw(bytes, i, hashes) {
                    put(&mut code, &mut with_comments, b, false, false);
                    i += 1;
                    for _ in 0..hashes {
                        if i < bytes.len() {
                            put(&mut code, &mut with_comments, bytes[i], false, false);
                            i += 1;
                        }
                    }
                    state = State::Code;
                } else {
                    put(&mut code, &mut with_comments, b, false, true);
                    i += 1;
                }
            }
        }
    }

    Masked {
        code: String::from_utf8_lossy(&code).into_owned(),
        with_comments: String::from_utf8_lossy(&with_comments).into_owned(),
    }
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// For a raw string starting at `r`, returns the number of `#`s before the
/// opening quote, or `None` if this is not a raw string opener.
fn raw_str_hashes(bytes: &[u8], mut i: usize) -> Option<u32> {
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) == Some(&b'"') {
        Some(hashes)
    } else {
        None
    }
}

fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|h| bytes.get(i + 1 + h) == Some(&b'#'))
}

/// Length in bytes of a char literal starting at the `'` at `i`, or `None`
/// when the quote starts a lifetime instead.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    let second = bytes.get(i + 1)?;
    if *second == b'\\' {
        // Escaped char: scan to the closing quote (handles \n, \u{..}, \x41).
        let mut k = i + 2;
        while k < bytes.len() && bytes[k] != b'\'' && bytes[k] != b'\n' {
            k += 1;
        }
        if bytes.get(k) == Some(&b'\'') {
            return Some(k - i + 1);
        }
        return None;
    }
    // Unescaped: `'x'` is a char literal; `'x` followed by anything else is a
    // lifetime. Multi-byte UTF-8 scalars also end with a quote.
    let mut k = i + 1;
    // Skip one UTF-8 scalar.
    let first_len = utf8_len(*second);
    k += first_len;
    if bytes.get(k) == Some(&b'\'') {
        Some(k - i + 1)
    } else {
        None
    }
}

fn utf8_len(b: u8) -> usize {
    if b < 0x80 {
        1
    } else if b >> 5 == 0b110 {
        2
    } else if b >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_blanked_in_code_view() {
        let m = mask("let x = 1; // thread_rng here\n/* panic! */ let y = 2;\n");
        assert!(!m.code.contains("thread_rng"));
        assert!(!m.code.contains("panic!"));
        assert!(m.code.contains("let x = 1;"));
        assert!(m.code.contains("let y = 2;"));
        // Comment text survives in the with_comments view.
        assert!(m.with_comments.contains("thread_rng"));
    }

    #[test]
    fn strings_blanked_in_both_views() {
        let m = mask("let s = \"unwrap() panic!\"; let t = r#\"thread_rng\"#;");
        for view in [&m.code, &m.with_comments] {
            assert!(!view.contains("unwrap"));
            assert!(!view.contains("panic"));
            assert!(!view.contains("thread_rng"));
        }
        assert!(m.code.contains("let s ="));
    }

    #[test]
    fn newlines_and_length_preserved() {
        let src = "a\n\"two\nline\"\n// c\nb";
        let m = mask(src);
        assert_eq!(m.code.len(), src.len());
        assert_eq!(m.code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let m = mask(r#"let s = "he said \"unwrap()\""; x.unwrap();"#);
        assert_eq!(m.code.matches("unwrap").count(), 1);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = mask("fn f<'a>(x: &'a str) { let c = '{'; let d = '\\n'; }");
        assert!(m.code.contains("<'a>"));
        assert!(!m.code.contains("'{'"), "brace in char literal masked");
        // Brace balance must be unaffected by the masked '{'.
        let opens = m.code.matches('{').count();
        let closes = m.code.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn nested_block_comments() {
        let m = mask("/* outer /* inner unwrap() */ still comment */ code()");
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.contains("code()"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let m = mask("let s = r##\"quote \"# panic! \"##; x.unwrap();");
        assert!(!m.code.contains("panic"), "{}", m.code);
        assert_eq!(m.code.matches("unwrap").count(), 1, "{}", m.code);
    }

    #[test]
    fn raw_byte_strings_have_no_escapes() {
        // In `br"\"` the backslash is a literal byte and the string ends at
        // the very next quote; escape processing would eat the terminator
        // and swallow the unwrap after it.
        let m = mask("let x = br\"\\\"; y.unwrap();");
        assert_eq!(m.code.matches("unwrap").count(), 1, "{}", m.code);
        let m = mask("let x = br#\"panic! \"quoted\" unwrap()\"#; real();");
        assert!(!m.code.contains("panic"), "{}", m.code);
        assert!(!m.code.contains("unwrap"), "{}", m.code);
        assert!(m.code.contains("real()"), "{}", m.code);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let m = mask("let s = b\"unwrap()\"; let c = b'\\''; x.unwrap();");
        assert_eq!(m.code.matches("unwrap").count(), 1, "{}", m.code);
        // An identifier ending in `b` before a quote is not a byte string.
        let m = mask("grab\"panic!\"; done();");
        assert!(m.code.contains("grab"), "{}", m.code);
        assert!(!m.code.contains("panic"), "{}", m.code);
        assert!(m.code.contains("done()"), "{}", m.code);
    }

    #[test]
    fn char_literal_containing_quote_does_not_open_string() {
        // If the `'"'` quote leaked, the following real string's contents
        // would be treated as code and `unwrap` would survive masking.
        let m = mask("let c = '\"'; let s = \"unwrap()\"; fine();");
        assert!(!m.code.contains("unwrap"), "{}", m.code);
        assert!(m.code.contains("fine()"), "{}", m.code);
    }
}
