//! The `et-lint.toml` allowlist: vetted exceptions to the L-rules, plus the
//! graph-rule configuration (entry points, taint sources, hot roots).
//!
//! The file is a sequence of `[[allow]]`, `[[entry]]`, `[[source]]`, and
//! `[[hot]]` tables; only the TOML subset below is parsed (std-only, no
//! TOML dependency):
//!
//! ```toml
//! [[allow]]
//! rule = "L1"                       # required: any rule id, L1..L14
//! path = "crates/et-data/src/x.rs"  # required: repo-relative, '/'-separated
//! pattern = "best.expect"           # optional: substring of offending line
//! line = 76                         # optional: exact 1-based line
//! reason = "why this is sound"      # required, non-empty
//!
//! [[entry]]                         # graph-rule entry point (L9 or L11)
//! rule = "L9"
//! pattern = "SessionState::"        # substring of the qualified fn name
//! note = "public session API"       # optional
//!
//! [[source]]                        # L11 taint source
//! rule = "L11"
//! pattern = "Instant::now"          # substring of rendered call text, or
//!                                   # the special token "hash-iter"
//! note = "wall clock"               # optional
//!
//! [[hot]]                           # L12-L14 hot-path root (no rule key:
//! pattern = "RelationMatrix::score" # one root feeds all three cost rules)
//! note = "per-round scoring loop"   # optional
//! ```
//!
//! An `[[allow]]` entry matches a violation when the rule matches, the
//! violation's path ends with `path`, and every provided narrowing field
//! matches. Unused entries are reported so the allowlist cannot rot
//! silently (with a nearest-path suggestion when the path looks moved).
//! `[[entry]]`/`[[source]]`/`[[hot]]` tables configure rules rather than
//! suppress findings, so they are exempt from staleness tracking; without
//! any of them the graph rules are vacuous.

use crate::rules::Violation;

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the exception applies to ("L1".."L14").
    pub rule: String,
    /// Repo-relative path suffix.
    pub path: String,
    /// Optional substring the offending line must contain.
    pub pattern: Option<String>,
    /// Optional exact line number.
    pub line: Option<usize>,
    /// Mandatory justification.
    pub reason: String,
}

/// One `[[entry]]` (graph-rule entry point) or `[[source]]` (L11 taint
/// source) table.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// Rule id: `L9`/`L11` for entries, `L11` for sources.
    pub rule: String,
    /// Substring pattern: matched against qualified fn names for entries,
    /// rendered call text for sources (`hash-iter` is special-cased).
    pub pattern: String,
    /// Optional annotation (documentation only).
    pub note: Option<String>,
}

/// One `[[hot]]` table: a hot-path root for the cost rules. A single root
/// feeds L12, L13, and L14 alike, so the table carries no `rule` key.
#[derive(Debug, Clone)]
pub struct HotRoot {
    /// Substring pattern matched against qualified fn names (same
    /// semantics as `[[entry]]` patterns).
    pub pattern: String,
    /// Optional annotation; surfaced in `HOTPATH.json`.
    pub note: Option<String>,
    /// 1-based line of the `[[hot]]` header in `et-lint.toml`, so a stale
    /// pattern can be reported at its declaration site.
    pub line: usize,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// All `[[allow]]` entries in file order.
    pub entries: Vec<AllowEntry>,
    /// All `[[entry]]` graph entry points in file order.
    pub graph_entries: Vec<GraphSpec>,
    /// All `[[source]]` taint sources in file order.
    pub graph_sources: Vec<GraphSpec>,
    /// All `[[hot]]` cost-rule roots in file order.
    pub hot_roots: Vec<HotRoot>,
}

/// A parse failure with its line number.
#[derive(Debug)]
pub struct AllowlistError {
    /// 1-based line in `et-lint.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "et-lint.toml:{}: {}", self.line, self.message)
    }
}

/// Which table a parsed block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TableKind {
    Allow,
    Entry,
    Source,
    Hot,
}

impl Allowlist {
    /// Parses the allowlist text.
    pub fn parse(text: &str) -> Result<Self, AllowlistError> {
        let mut list = Allowlist::default();
        let mut current: Option<(usize, TableKind, PartialEntry)> = None;

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            let header = match line {
                "[[allow]]" => Some(TableKind::Allow),
                "[[entry]]" => Some(TableKind::Entry),
                "[[source]]" => Some(TableKind::Source),
                "[[hot]]" => Some(TableKind::Hot),
                _ => None,
            };
            if let Some(kind) = header {
                if let Some((at, k, partial)) = current.take() {
                    list.push_finished(at, k, partial)?;
                }
                current = Some((line_no, kind, PartialEntry::default()));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowlistError {
                    line: line_no,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let Some((_, kind, partial)) = current.as_mut() else {
                return Err(AllowlistError {
                    line: line_no,
                    message: "key outside any [[allow]]/[[entry]]/[[source]]/[[hot]] table".into(),
                });
            };
            partial.set(*kind, key.trim(), value.trim(), line_no)?;
        }
        if let Some((at, kind, partial)) = current.take() {
            list.push_finished(at, kind, partial)?;
        }
        Ok(list)
    }

    fn push_finished(
        &mut self,
        at: usize,
        kind: TableKind,
        partial: PartialEntry,
    ) -> Result<(), AllowlistError> {
        match kind {
            TableKind::Allow => self.entries.push(partial.finish_allow(at)?),
            TableKind::Entry => self
                .graph_entries
                .push(partial.finish_spec(at, &["L9", "L11"])?),
            TableKind::Source => self.graph_sources.push(partial.finish_spec(at, &["L11"])?),
            TableKind::Hot => self.hot_roots.push(partial.finish_hot(at)?),
        }
        Ok(())
    }

    /// The `[[entry]]`/`[[source]]` patterns declared for one rule id.
    pub fn specs_for<'a>(specs: &'a [GraphSpec], rule: &str) -> Vec<&'a str> {
        specs
            .iter()
            .filter(|s| s.rule == rule)
            .map(|s| s.pattern.as_str())
            .collect()
    }

    /// Indices of entries matching `v` in `path` (forward-slash normalised).
    pub fn matches(&self, path: &str, v: &Violation) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.rule == v.rule.id()
                    && path.ends_with(e.path.as_str())
                    && e.line.is_none_or(|l| l == v.line)
                    && e.pattern.as_ref().is_none_or(|p| v.excerpt.contains(p))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

fn strip_comment(line: &str) -> &str {
    // A '#' outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[derive(Debug, Default)]
struct PartialEntry {
    rule: Option<String>,
    path: Option<String>,
    pattern: Option<String>,
    line: Option<usize>,
    reason: Option<String>,
    note: Option<String>,
}

impl PartialEntry {
    fn set(
        &mut self,
        kind: TableKind,
        key: &str,
        value: &str,
        line_no: usize,
    ) -> Result<(), AllowlistError> {
        let err = |message: String| AllowlistError {
            line: line_no,
            message,
        };
        match key {
            "rule" if kind != TableKind::Hot => {
                let v = unquote(value).ok_or_else(|| err("rule must be a string".into()))?;
                if crate::rules::Rule::from_id(&v).is_none() {
                    return Err(err(format!("unknown rule `{v}`")));
                }
                self.rule = Some(v);
            }
            "path" if kind == TableKind::Allow => {
                self.path =
                    Some(unquote(value).ok_or_else(|| err("path must be a string".into()))?);
            }
            "pattern" => {
                self.pattern =
                    Some(unquote(value).ok_or_else(|| err("pattern must be a string".into()))?);
            }
            "reason" if kind == TableKind::Allow => {
                let v = unquote(value).ok_or_else(|| err("reason must be a string".into()))?;
                if v.trim().is_empty() {
                    return Err(err("reason must not be empty".into()));
                }
                self.reason = Some(v);
            }
            "line" if kind == TableKind::Allow => {
                self.line = Some(
                    value
                        .parse::<usize>()
                        .map_err(|e| err(format!("line must be an integer: {e}")))?,
                );
            }
            "note" if kind != TableKind::Allow => {
                self.note =
                    Some(unquote(value).ok_or_else(|| err("note must be a string".into()))?);
            }
            other => return Err(err(format!("unknown key `{other}` for this table"))),
        }
        Ok(())
    }

    fn finish_allow(self, table_line: usize) -> Result<AllowEntry, AllowlistError> {
        let err = |message: &str| AllowlistError {
            line: table_line,
            message: message.into(),
        };
        Ok(AllowEntry {
            rule: self.rule.ok_or_else(|| err("missing `rule`"))?,
            path: self.path.ok_or_else(|| err("missing `path`"))?,
            pattern: self.pattern,
            line: self.line,
            reason: self.reason.ok_or_else(|| err("missing `reason`"))?,
        })
    }

    fn finish_spec(self, table_line: usize, rules: &[&str]) -> Result<GraphSpec, AllowlistError> {
        let err = |message: String| AllowlistError {
            line: table_line,
            message,
        };
        let rule = self.rule.ok_or_else(|| err("missing `rule`".into()))?;
        if !rules.contains(&rule.as_str()) {
            return Err(err(format!(
                "rule `{rule}` not valid here (expected one of {rules:?})"
            )));
        }
        let pattern = self
            .pattern
            .ok_or_else(|| err("missing `pattern`".into()))?;
        if pattern.trim().is_empty() {
            return Err(err("pattern must not be empty".into()));
        }
        Ok(GraphSpec {
            rule,
            pattern,
            note: self.note,
        })
    }

    fn finish_hot(self, table_line: usize) -> Result<HotRoot, AllowlistError> {
        let err = |message: &str| AllowlistError {
            line: table_line,
            message: message.into(),
        };
        let pattern = self
            .pattern
            .ok_or_else(|| err("[[hot]] table missing `pattern`"))?;
        if pattern.trim().is_empty() {
            return Err(err("[[hot]] pattern must not be empty"));
        }
        Ok(HotRoot {
            pattern,
            note: self.note,
            line: table_line,
        })
    }
}

/// For a stale allowlist `path`, the scanned path it most plausibly meant:
/// the candidate minimizing edit distance over same-length path suffixes,
/// accepted only when the distance is small relative to the entry's length
/// (a moved or renamed file, not a different one).
pub fn suggest_path<'a>(stale: &str, scanned: &'a [String]) -> Option<&'a str> {
    let stale_parts: Vec<&str> = stale.split('/').collect();
    let mut best: Option<(usize, &str)> = None;
    for cand in scanned {
        let cand_parts: Vec<&str> = cand.split('/').collect();
        let k = stale_parts.len().min(cand_parts.len());
        let stale_suffix = stale_parts[stale_parts.len() - k..].join("/");
        let cand_suffix = cand_parts[cand_parts.len() - k..].join("/");
        let d = edit_distance(&stale_suffix, &cand_suffix);
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, cand.as_str()));
        }
    }
    let (d, cand) = best?;
    // Accept only near-misses: more than a third of the name changed is a
    // different file, not a typo or a move.
    if d * 3 <= stale.len() {
        Some(cand)
    } else {
        None
    }
}

/// Levenshtein distance, two-row DP, byte-wise (paths are ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

fn unquote(value: &str) -> Option<String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Some(v[1..v.len() - 1].to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Rule, Violation};

    fn violation(rule: Rule, line: usize, excerpt: &str) -> Violation {
        Violation {
            rule,
            line,
            message: String::new(),
            excerpt: excerpt.into(),
        }
    }

    #[test]
    fn parses_full_and_minimal_entries() {
        let text = r#"
# exceptions vetted in PR review
[[allow]]
rule = "L1"
path = "crates/et-data/src/subset.rs"
pattern = "best.expect"
reason = "lookahead pool is structurally non-empty"

[[allow]]
rule = "L4"                     # trailing comment
path = "crates/et-core/src/x.rs"
line = 12
reason = "doc inherited from trait"
"#;
        let list = Allowlist::parse(text).expect("parses");
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].rule, "L1");
        assert_eq!(list.entries[0].pattern.as_deref(), Some("best.expect"));
        assert_eq!(list.entries[1].line, Some(12));
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(Allowlist::parse("[[allow]]\nrule = \"L99\"\n").is_err());
        assert!(
            Allowlist::parse("[[allow]]\nrule = \"L1\"\n").is_err(),
            "missing path/reason"
        );
        assert!(
            Allowlist::parse("rule = \"L1\"\n").is_err(),
            "key outside table"
        );
        assert!(
            Allowlist::parse("[[allow]]\nrule = \"L1\"\npath = \"x\"\nreason = \"\"\n").is_err()
        );
        assert!(Allowlist::parse("[[allow]]\nwhat = 3\n").is_err());
    }

    #[test]
    fn matching_honours_all_narrowing_fields() {
        let text = "[[allow]]\nrule = \"L1\"\npath = \"src/a.rs\"\npattern = \"expect\"\nreason = \"ok\"\n";
        let list = Allowlist::parse(text).expect("parses");
        let hit = violation(Rule::L1, 5, "x.expect(\"y\")");
        assert_eq!(list.matches("crates/c/src/a.rs", &hit).len(), 1);
        // Wrong rule, wrong path, wrong pattern.
        assert!(list
            .matches("crates/c/src/a.rs", &violation(Rule::L2, 5, "x.expect(1)"))
            .is_empty());
        assert!(list.matches("crates/c/src/b.rs", &hit).is_empty());
        assert!(list
            .matches("crates/c/src/a.rs", &violation(Rule::L1, 5, "clean line"))
            .is_empty());
    }

    #[test]
    fn parses_entry_and_source_tables() {
        let text = r#"
[[entry]]
rule = "L9"
pattern = "SessionState::"
note = "public session API"

[[entry]]
rule = "L11"
pattern = "replay_history"

[[source]]
rule = "L11"
pattern = "Instant::now"
"#;
        let list = Allowlist::parse(text).expect("parses");
        assert!(list.entries.is_empty());
        assert_eq!(list.graph_entries.len(), 2);
        assert_eq!(list.graph_sources.len(), 1);
        assert_eq!(
            Allowlist::specs_for(&list.graph_entries, "L9"),
            ["SessionState::"]
        );
        assert_eq!(
            Allowlist::specs_for(&list.graph_entries, "L11"),
            ["replay_history"]
        );
        assert_eq!(
            list.graph_entries[0].note.as_deref(),
            Some("public session API")
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        // Entries take only L9/L11; sources only L11.
        assert!(Allowlist::parse("[[entry]]\nrule = \"L1\"\npattern = \"x\"\n").is_err());
        assert!(Allowlist::parse("[[source]]\nrule = \"L9\"\npattern = \"x\"\n").is_err());
        // pattern is mandatory and non-empty.
        assert!(Allowlist::parse("[[entry]]\nrule = \"L9\"\n").is_err());
        assert!(Allowlist::parse("[[entry]]\nrule = \"L9\"\npattern = \"\"\n").is_err());
        // Allow-only keys are rejected in spec tables and vice versa.
        assert!(
            Allowlist::parse("[[entry]]\nrule = \"L9\"\npattern = \"x\"\nreason = \"y\"\n")
                .is_err()
        );
        assert!(Allowlist::parse(
            "[[allow]]\nrule = \"L1\"\npath = \"x\"\nreason = \"y\"\nnote = \"z\"\n"
        )
        .is_err());
    }

    #[test]
    fn parses_hot_tables() {
        let text = r#"
[[hot]]
pattern = "RelationMatrix::score_all"
note = "per-round scoring loop"

[[hot]]
pattern = "SessionState::apply_labels"
"#;
        let list = Allowlist::parse(text).expect("parses");
        assert_eq!(list.hot_roots.len(), 2);
        assert_eq!(list.hot_roots[0].pattern, "RelationMatrix::score_all");
        assert_eq!(
            list.hot_roots[0].note.as_deref(),
            Some("per-round scoring loop")
        );
        assert!(list.hot_roots[1].note.is_none());
    }

    #[test]
    fn rejects_malformed_hot_tables() {
        // pattern is mandatory and non-empty.
        assert!(Allowlist::parse("[[hot]]\nnote = \"x\"\n").is_err());
        assert!(Allowlist::parse("[[hot]]\npattern = \"\"\n").is_err());
        // A hot root feeds all three cost rules: a `rule` key is an error.
        assert!(Allowlist::parse("[[hot]]\nrule = \"L12\"\npattern = \"x\"\n").is_err());
        // Allow-only keys are rejected.
        assert!(Allowlist::parse("[[hot]]\npattern = \"x\"\nreason = \"y\"\n").is_err());
    }

    #[test]
    fn suggest_path_finds_moved_files_and_rejects_strangers() {
        let scanned = vec![
            "crates/et-core/src/session.rs".to_string(),
            "crates/et-serve/src/server.rs".to_string(),
            "crates/et-fd/src/cache.rs".to_string(),
        ];
        // A renamed file is a near-miss.
        assert_eq!(
            suggest_path("crates/et-core/src/sessions.rs", &scanned),
            Some("crates/et-core/src/session.rs")
        );
        // A crate move keeps the stem close enough.
        assert_eq!(
            suggest_path("crates/et-server/src/server.rs", &scanned),
            Some("crates/et-serve/src/server.rs")
        );
        // A completely different path yields no suggestion.
        assert_eq!(suggest_path("docs/zzz_qqq_www.md", &scanned), None);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
