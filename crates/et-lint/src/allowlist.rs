//! The `et-lint.toml` allowlist: vetted exceptions to the L-rules.
//!
//! The file is a sequence of `[[allow]]` tables; only the TOML subset below
//! is parsed (std-only, no TOML dependency):
//!
//! ```toml
//! [[allow]]
//! rule = "L1"                       # required: any rule id, L1..L8
//! path = "crates/et-data/src/x.rs"  # required: repo-relative, '/'-separated
//! pattern = "best.expect"           # optional: substring of offending line
//! line = 76                         # optional: exact 1-based line
//! reason = "why this is sound"      # required, non-empty
//! ```
//!
//! An entry matches a violation when the rule matches, the violation's path
//! ends with `path`, and every provided narrowing field matches. Unused
//! entries are reported so the allowlist cannot rot silently.

use crate::rules::Violation;

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule id the exception applies to ("L1".."L4").
    pub rule: String,
    /// Repo-relative path suffix.
    pub path: String,
    /// Optional substring the offending line must contain.
    pub pattern: Option<String>,
    /// Optional exact line number.
    pub line: Option<usize>,
    /// Mandatory justification.
    pub reason: String,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// All entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// A parse failure with its line number.
#[derive(Debug)]
pub struct AllowlistError {
    /// 1-based line in `et-lint.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AllowlistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "et-lint.toml:{}: {}", self.line, self.message)
    }
}

impl Allowlist {
    /// Parses the allowlist text.
    pub fn parse(text: &str) -> Result<Self, AllowlistError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<(usize, PartialEntry)> = None;

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some((at, partial)) = current.take() {
                    entries.push(partial.finish(at)?);
                }
                current = Some((line_no, PartialEntry::default()));
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowlistError {
                    line: line_no,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let Some((_, partial)) = current.as_mut() else {
                return Err(AllowlistError {
                    line: line_no,
                    message: "key outside any [[allow]] table".into(),
                });
            };
            partial.set(key.trim(), value.trim(), line_no)?;
        }
        if let Some((at, partial)) = current.take() {
            entries.push(partial.finish(at)?);
        }
        Ok(Self { entries })
    }

    /// Indices of entries matching `v` in `path` (forward-slash normalised).
    pub fn matches(&self, path: &str, v: &Violation) -> Vec<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                e.rule == v.rule.id()
                    && path.ends_with(e.path.as_str())
                    && e.line.is_none_or(|l| l == v.line)
                    && e.pattern.as_ref().is_none_or(|p| v.excerpt.contains(p))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

fn strip_comment(line: &str) -> &str {
    // A '#' outside quotes starts a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[derive(Debug, Default)]
struct PartialEntry {
    rule: Option<String>,
    path: Option<String>,
    pattern: Option<String>,
    line: Option<usize>,
    reason: Option<String>,
}

impl PartialEntry {
    fn set(&mut self, key: &str, value: &str, line_no: usize) -> Result<(), AllowlistError> {
        let err = |message: String| AllowlistError {
            line: line_no,
            message,
        };
        match key {
            "rule" => {
                let v = unquote(value).ok_or_else(|| err("rule must be a string".into()))?;
                if crate::rules::Rule::from_id(&v).is_none() {
                    return Err(err(format!("unknown rule `{v}`")));
                }
                self.rule = Some(v);
            }
            "path" => {
                self.path =
                    Some(unquote(value).ok_or_else(|| err("path must be a string".into()))?);
            }
            "pattern" => {
                self.pattern =
                    Some(unquote(value).ok_or_else(|| err("pattern must be a string".into()))?);
            }
            "reason" => {
                let v = unquote(value).ok_or_else(|| err("reason must be a string".into()))?;
                if v.trim().is_empty() {
                    return Err(err("reason must not be empty".into()));
                }
                self.reason = Some(v);
            }
            "line" => {
                self.line = Some(
                    value
                        .parse::<usize>()
                        .map_err(|e| err(format!("line must be an integer: {e}")))?,
                );
            }
            other => return Err(err(format!("unknown key `{other}`"))),
        }
        Ok(())
    }

    fn finish(self, table_line: usize) -> Result<AllowEntry, AllowlistError> {
        let err = |message: &str| AllowlistError {
            line: table_line,
            message: message.into(),
        };
        Ok(AllowEntry {
            rule: self.rule.ok_or_else(|| err("missing `rule`"))?,
            path: self.path.ok_or_else(|| err("missing `path`"))?,
            pattern: self.pattern,
            line: self.line,
            reason: self.reason.ok_or_else(|| err("missing `reason`"))?,
        })
    }
}

fn unquote(value: &str) -> Option<String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Some(v[1..v.len() - 1].to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Rule, Violation};

    fn violation(rule: Rule, line: usize, excerpt: &str) -> Violation {
        Violation {
            rule,
            line,
            message: String::new(),
            excerpt: excerpt.into(),
        }
    }

    #[test]
    fn parses_full_and_minimal_entries() {
        let text = r#"
# exceptions vetted in PR review
[[allow]]
rule = "L1"
path = "crates/et-data/src/subset.rs"
pattern = "best.expect"
reason = "lookahead pool is structurally non-empty"

[[allow]]
rule = "L4"                     # trailing comment
path = "crates/et-core/src/x.rs"
line = 12
reason = "doc inherited from trait"
"#;
        let list = Allowlist::parse(text).expect("parses");
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.entries[0].rule, "L1");
        assert_eq!(list.entries[0].pattern.as_deref(), Some("best.expect"));
        assert_eq!(list.entries[1].line, Some(12));
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(Allowlist::parse("[[allow]]\nrule = \"L9\"\n").is_err());
        assert!(
            Allowlist::parse("[[allow]]\nrule = \"L1\"\n").is_err(),
            "missing path/reason"
        );
        assert!(
            Allowlist::parse("rule = \"L1\"\n").is_err(),
            "key outside table"
        );
        assert!(
            Allowlist::parse("[[allow]]\nrule = \"L1\"\npath = \"x\"\nreason = \"\"\n").is_err()
        );
        assert!(Allowlist::parse("[[allow]]\nwhat = 3\n").is_err());
    }

    #[test]
    fn matching_honours_all_narrowing_fields() {
        let text = "[[allow]]\nrule = \"L1\"\npath = \"src/a.rs\"\npattern = \"expect\"\nreason = \"ok\"\n";
        let list = Allowlist::parse(text).expect("parses");
        let hit = violation(Rule::L1, 5, "x.expect(\"y\")");
        assert_eq!(list.matches("crates/c/src/a.rs", &hit).len(), 1);
        // Wrong rule, wrong path, wrong pattern.
        assert!(list
            .matches("crates/c/src/a.rs", &violation(Rule::L2, 5, "x.expect(1)"))
            .is_empty());
        assert!(list.matches("crates/c/src/b.rs", &hit).is_empty());
        assert!(list
            .matches("crates/c/src/a.rs", &violation(Rule::L1, 5, "clean line"))
            .is_empty());
    }
}
