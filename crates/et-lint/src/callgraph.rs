//! The workspace call graph: per-crate symbol tables and best-effort call
//! resolution over [`crate::parser`] output.
//!
//! ## Resolution policy
//!
//! Every call site resolves to zero or more graph nodes. The policy is
//! engineered so that a *wrong* edge is far less likely than a *missing*
//! one, and every missing one is counted in an explicit unresolved bucket
//! rather than silently dropped:
//!
//! 1. **Self method** (`self.m(…)` inside `impl T`): exact lookup of
//!    `crate::T::m`; falls through to the general method rule when the
//!    impl type has no such method (trait default impls, derefs).
//! 2. **General method** (`x.m(…)`): all workspace methods named `m` —
//!    *unless* `m` is in the ubiquitous-name stoplist (`UBIQUITOUS`:
//!    `new`, `len`, `get`, `insert`, `iter`, …), in which case the call is
//!    unresolved (std methods share those names; edges would be noise).
//!    When the parser recorded a receiver hint, candidate sets are first
//!    narrowed to impl types whose lowercased name relates to the hint.
//! 3. **Path call** (`a::b::f(…)`): segments are normalized (leading
//!    `crate`/`super`/`self` dropped, `Self` replaced by the impl type)
//!    and suffix-matched against every node's qualified segment vector.
//! 4. **Bare call** (`f(…)` after import expansion found nothing): same
//!    module first, then same crate, then unresolved.
//!
//! ## Determinism
//!
//! Files are parsed in the engine's sorted file order (parallel workers
//! write into disjoint, pre-allocated slots, so thread scheduling cannot
//! reorder results — see [`crate::run`]). Node ids are assigned in that
//! order; symbol tables are `BTreeMap`s; candidate lists are sorted by
//! node id. Every downstream analysis iterates nodes and edges by id, so
//! two runs over the same tree produce byte-identical reports.

use std::collections::BTreeMap;

use crate::parser::{Callee, CostKind, FileAst, FnItem};

/// Cost-closure bit: a heap allocation is contained or reachable.
pub const COST_ALLOC: u8 = 1;
/// Cost-closure bit: a lock acquisition or blocking call is reachable.
pub const COST_LOCK: u8 = 2;
/// Cost-closure bit: I/O or a syscall is reachable.
pub const COST_IO: u8 = 4;

/// The closure bit for one [`CostKind`].
pub fn cost_bit(kind: CostKind) -> u8 {
    match kind {
        CostKind::Alloc => COST_ALLOC,
        CostKind::Lock => COST_LOCK,
        CostKind::Io => COST_IO,
    }
}

/// Method names too common to resolve by name alone: nearly all collide
/// with `std` types, so a name-only edge would be noise. Calls to these
/// resolve only through the self-method rule (exact `crate::T::m` hit).
const UBIQUITOUS: [&str; 37] = [
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "collect",
    "contains",
    "contains_key",
    "keys",
    "values",
    "from",
    "into",
    "to_string",
    "to_owned",
    "as_ref",
    "as_mut",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "drop",
    "write",
    "read",
    "send",
    "recv",
    "clear",
    "parse",
];

/// One function node in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// The parsed item (calls, panics, params, …).
    pub item: FnItem,
    /// Repo-relative path of the defining file.
    pub file: String,
    /// Crate name with `-` mapped to `_` (`et_serve`).
    pub krate: String,
    /// Qualified segments: `[crate, modules…, Type?, name]`.
    pub segments: Vec<String>,
}

impl FnNode {
    /// `crate::mod::Type::name` rendering for messages and witnesses.
    pub fn qual(&self) -> String {
        self.segments.join("::")
    }
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee node id.
    pub callee: usize,
    /// Index into the caller's `item.calls` (for lines and witnesses).
    pub call_idx: usize,
}

/// The linked workspace graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes, in deterministic (file order, source order) id order.
    pub nodes: Vec<FnNode>,
    /// Outgoing resolved edges per node, ordered by call-site order.
    pub edges: Vec<Vec<Edge>>,
    /// Rendered names of calls no rule could resolve (deduplicated,
    /// sorted); sized by `unresolved_count`.
    pub unresolved: std::collections::BTreeSet<String>,
    /// Total unresolved call sites (a rendered name can repeat).
    pub unresolved_count: usize,
}

impl CallGraph {
    /// Builds the graph from per-file parses. `files` pairs each
    /// repo-relative path with its AST, already in the engine's sorted
    /// file order; only library files belong here.
    pub fn link(files: &[(String, FileAst)]) -> CallGraph {
        let mut nodes: Vec<FnNode> = Vec::new();
        for (rel, ast) in files {
            let (krate, file_mods) = module_prefix(rel);
            for item in &ast.fns {
                let mut segments = Vec::with_capacity(2 + file_mods.len() + 2);
                segments.push(krate.clone());
                segments.extend(file_mods.iter().cloned());
                segments.extend(item.module_path.iter().cloned());
                if let Some(t) = &item.self_type {
                    if !t.is_empty() {
                        segments.push(t.clone());
                    }
                }
                segments.push(item.name.clone());
                nodes.push(FnNode {
                    item: item.clone(),
                    file: rel.clone(),
                    krate: krate.clone(),
                    segments,
                });
            }
        }

        // Symbol tables. All are BTreeMaps keyed by strings; values are
        // id lists in ascending id order by construction.
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(String, String, String), Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            by_name.entry(&n.item.name).or_default().push(id);
            if let Some(t) = &n.item.self_type {
                if !t.is_empty() {
                    methods.entry(&n.item.name).or_default().push(id);
                    typed
                        .entry((n.krate.clone(), t.clone(), n.item.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }

        let mut graph = CallGraph {
            edges: vec![Vec::new(); nodes.len()],
            ..CallGraph::default()
        };

        for (id, node) in nodes.iter().enumerate() {
            for (call_idx, call) in node.item.calls.iter().enumerate() {
                let targets = resolve(node, call_idx, &nodes, &by_name, &methods, &typed);
                if targets.is_empty() {
                    graph.unresolved_count += 1;
                    graph.unresolved.insert(call.callee.render());
                } else {
                    for callee in targets {
                        graph.edges[id].push(Edge { callee, call_idx });
                    }
                }
            }
        }
        graph.nodes = nodes;
        graph
    }

    /// Node ids whose qualified name contains `pattern` (substring match),
    /// test fns excluded. The entry-point selector for L9/L11.
    pub fn match_entries(&self, pattern: &str, require_pub: bool) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.item.is_test)
            .filter(|(_, n)| !require_pub || n.item.is_pub)
            .filter(|(_, n)| n.qual().contains(pattern))
            .map(|(id, _)| id)
            .collect()
    }

    /// Breadth-first reachability from `entries` over resolved edges,
    /// returning for each reached node the id of the node it was first
    /// reached *from* (entries map to themselves). Deterministic: the
    /// frontier is processed in id order.
    pub fn reach(&self, entries: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut frontier: Vec<usize> = Vec::new();
        let mut sorted_entries = entries.to_vec();
        sorted_entries.sort_unstable();
        sorted_entries.dedup();
        for &e in &sorted_entries {
            parent.insert(e, e);
            frontier.push(e);
        }
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &id in &frontier {
                for edge in &self.edges[id] {
                    // Never traverse *into* test fns: cfg(test) code
                    // is allowed to panic and be nondeterministic.
                    if self.nodes[edge.callee].item.is_test {
                        continue;
                    }
                    if let std::collections::btree_map::Entry::Vacant(slot) =
                        parent.entry(edge.callee)
                    {
                        slot.insert(id);
                        next.push(edge.callee);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        parent
    }

    /// Per-node transitive cost masks (`COST_ALLOC | COST_LOCK | COST_IO`):
    /// bit set when the node itself contains a cost-bearing operation of
    /// that class or can reach one over resolved edges. Computed as a
    /// reverse-reachability fixpoint — callers inherit callee bits until
    /// nothing changes — so the cost rules can skip whole hot roots whose
    /// mask is clean without walking them. Test fns neither carry nor
    /// propagate cost (mirroring [`Self::reach`]'s traversal policy).
    pub fn cost_closure(&self) -> Vec<u8> {
        let n = self.nodes.len();
        let mut mask: Vec<u8> = self
            .nodes
            .iter()
            .map(|node| {
                if node.item.is_test {
                    0
                } else {
                    node.item
                        .costs
                        .iter()
                        .fold(0u8, |m, c| m | cost_bit(c.kind))
                }
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..n {
                if self.nodes[id].item.is_test {
                    continue;
                }
                let mut m = mask[id];
                for e in &self.edges[id] {
                    if self.nodes[e.callee].item.is_test {
                        continue;
                    }
                    m |= mask[e.callee];
                }
                if m != mask[id] {
                    mask[id] = m;
                    changed = true;
                }
            }
        }
        mask
    }

    /// The witness chain from an entry down to `target`, rendered as
    /// `qual (file:line)` hops, using the BFS parent map from [`Self::reach`].
    pub fn witness(&self, parents: &BTreeMap<usize, usize>, target: usize) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cur = target;
        let mut hops = 0usize;
        while let Some(&p) = parents.get(&cur) {
            let n = &self.nodes[cur];
            chain.push(format!("{} ({}:{})", n.qual(), n.file, n.item.line));
            if p == cur || hops > self.nodes.len() {
                break;
            }
            cur = p;
            hops += 1;
        }
        chain.reverse();
        chain
    }
}

/// Splits a repo-relative library path into its crate name and
/// file-derived module segments: `crates/et-fd/src/cache.rs` →
/// (`et_fd`, [`cache`]); `src/lib.rs` → (`exploratory_training`, []).
/// `lib`/`main`/`mod` stems and `bin` directories contribute no segment.
fn module_prefix(rel: &str) -> (String, Vec<String>) {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, rest) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        (parts[1].replace('-', "_"), &parts[3..])
    } else {
        ("exploratory_training".to_string(), &parts[1..])
    };
    let mut mods = Vec::new();
    for (i, part) in rest.iter().enumerate() {
        let is_last = i + 1 == rest.len();
        let name = if is_last {
            part.strip_suffix(".rs").unwrap_or(part)
        } else {
            part
        };
        if matches!(name, "lib" | "main" | "mod" | "bin") {
            continue;
        }
        mods.push(name.to_string());
    }
    (krate, mods)
}

/// Resolves one call site to its candidate node ids (possibly empty).
fn resolve(
    caller: &FnNode,
    call_idx: usize,
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
    methods: &BTreeMap<&str, Vec<usize>>,
    typed: &BTreeMap<(String, String, String), Vec<usize>>,
) -> Vec<usize> {
    let call = &caller.item.calls[call_idx];
    match &call.callee {
        Callee::Method { name, recv } => {
            // Rule 1: `self.m()` inside `impl T` → crate::T::m.
            if recv.is_self && recv.hint.is_none() {
                if let Some(t) = &caller.item.self_type {
                    if let Some(ids) = typed.get(&(caller.krate.clone(), t.clone(), name.clone())) {
                        return ids.clone();
                    }
                }
            }
            // Rule 2: general method. Ubiquitous names resolve only via
            // rule 1 above.
            if UBIQUITOUS.contains(&name.as_str()) {
                return Vec::new();
            }
            let Some(ids) = methods.get(name.as_str()) else {
                return Vec::new();
            };
            // Hint narrowing: `self.cache.rebuild()` with a field hint
            // `cache` prefers impl types whose lowercased name and the
            // hint share a stem in either direction.
            if let Some(hint) = &recv.hint {
                let hint_l = hint.to_lowercase().replace('_', "");
                let narrowed: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&id| {
                        nodes[id].item.self_type.as_ref().is_some_and(|t| {
                            let t_l = t.to_lowercase();
                            !hint_l.is_empty() && (t_l.contains(&hint_l) || hint_l.contains(&t_l))
                        })
                    })
                    .collect();
                if !narrowed.is_empty() {
                    return narrowed;
                }
            }
            ids.clone()
        }
        Callee::Path { segments } => {
            let normalized = normalize_path(segments, caller);
            if normalized.is_empty() {
                return Vec::new();
            }
            if normalized.len() == 1 {
                return resolve_bare(&normalized[0], caller, nodes, by_name);
            }
            // Rule 3: suffix match against qualified segment vectors.
            // External paths (std::…, vendored crates) match nothing and
            // land in the unresolved bucket, which is correct: their
            // behaviour is covered by taint *sources*, not edges.
            let hits: Vec<usize> = nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| !n.item.is_test)
                .filter(|(_, n)| ends_with(&n.segments, &normalized))
                .map(|(id, _)| id)
                .collect();
            hits
        }
    }
}

/// Drops leading `crate`/`super`/`self` segments and substitutes `Self`
/// with the caller's impl type.
fn normalize_path(segments: &[String], caller: &FnNode) -> Vec<String> {
    let mut out = Vec::with_capacity(segments.len());
    for (i, s) in segments.iter().enumerate() {
        if i == 0 && matches!(s.as_str(), "crate" | "super" | "self") {
            continue;
        }
        if s == "Self" {
            if let Some(t) = &caller.item.self_type {
                out.push(t.clone());
                continue;
            }
        }
        out.push(s.clone());
    }
    out
}

/// Rule 4: a bare `f()` resolves within the caller's module, then the
/// caller's crate; ambiguity across crates stays unresolved.
fn resolve_bare(
    name: &str,
    caller: &FnNode,
    nodes: &[FnNode],
    by_name: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let Some(ids) = by_name.get(name) else {
        return Vec::new();
    };
    // Free functions only: a bare call cannot hit a method.
    let frees: Vec<usize> = ids
        .iter()
        .copied()
        .filter(|&id| nodes[id].item.self_type.is_none() && !nodes[id].item.is_test)
        .collect();
    let same_module: Vec<usize> = frees
        .iter()
        .copied()
        .filter(|&id| {
            nodes[id].krate == caller.krate && nodes[id].file == caller.file
                || nodes[id].segments[..nodes[id].segments.len() - 1]
                    == caller.segments[..caller.segments.len().saturating_sub(1)]
        })
        .collect();
    if !same_module.is_empty() {
        return same_module;
    }
    let same_crate: Vec<usize> = frees
        .iter()
        .copied()
        .filter(|&id| nodes[id].krate == caller.krate)
        .collect();
    same_crate
}

/// True when `hay` ends with `needle`.
fn ends_with(hay: &[String], needle: &[String]) -> bool {
    needle.len() <= hay.len() && hay[hay.len() - needle.len()..] == *needle
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<(String, FileAst)> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), parse(src)))
            .collect();
        CallGraph::link(&parsed)
    }

    fn id_of(g: &CallGraph, qual: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.qual() == qual)
            .unwrap_or_else(|| {
                let all: Vec<String> = g.nodes.iter().map(FnNode::qual).collect();
                panic!("no node {qual}; have {all:?}")
            })
    }

    fn callees(g: &CallGraph, id: usize) -> Vec<String> {
        g.edges[id]
            .iter()
            .map(|e| g.nodes[e.callee].qual())
            .collect()
    }

    #[test]
    fn qualified_names_follow_file_layout() {
        let g = graph(&[
            (
                "crates/et-fd/src/cache.rs",
                "impl PartitionCache { fn hit(&self) {} }",
            ),
            ("src/lib.rs", "pub fn root() {}"),
            ("crates/et-serve/src/bin/serve.rs", "fn main() {}"),
        ]);
        assert_eq!(g.nodes[0].qual(), "et_fd::cache::PartitionCache::hit");
        assert_eq!(g.nodes[1].qual(), "exploratory_training::root");
        assert_eq!(g.nodes[2].qual(), "et_serve::serve::main");
    }

    #[test]
    fn self_method_resolves_exactly() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            r#"
            impl Engine {
                pub fn step(&self) { self.advance(); }
                fn advance(&self) {}
            }
            impl Other {
                fn advance(&self) {}
            }
            "#,
        )]);
        let step = id_of(&g, "a::Engine::step");
        assert_eq!(callees(&g, step), ["a::Engine::advance"]);
    }

    #[test]
    fn ubiquitous_method_names_stay_unresolved() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            r#"
            impl Store { pub fn insert(&self, k: u32) {} }
            fn caller(v: &Vec<u32>) { v.clear(); other.insert(3); }
            "#,
        )]);
        let caller = id_of(&g, "a::caller");
        assert!(callees(&g, caller).is_empty(), "{:?}", callees(&g, caller));
        assert!(g.unresolved.contains("v.clear"), "{:?}", g.unresolved);
        assert!(g.unresolved_count >= 2);
    }

    #[test]
    fn path_calls_suffix_match_and_cross_crates() {
        let g = graph(&[
            (
                "crates/et-core/src/session.rs",
                "impl SessionState { pub fn present(&self) {} }",
            ),
            (
                "crates/et-serve/src/server.rs",
                r#"
                use et_core::session::SessionState;
                fn handle() { SessionState::present(); crate::local(); }
                fn local() {}
                "#,
            ),
        ]);
        let handle = id_of(&g, "et_serve::server::handle");
        let got = callees(&g, handle);
        assert!(
            got.contains(&"et_core::session::SessionState::present".to_string()),
            "{got:?}"
        );
        assert!(
            got.contains(&"et_serve::server::local".to_string()),
            "{got:?}"
        );
    }

    #[test]
    fn bare_calls_prefer_same_module_then_same_crate() {
        let g = graph(&[
            ("crates/a/src/x.rs", "fn f() { helper(); } fn helper() {}"),
            ("crates/a/src/y.rs", "fn helper() {}"),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        let f = id_of(&g, "a::x::f");
        assert_eq!(callees(&g, f), ["a::x::helper"], "same-module wins");
    }

    #[test]
    fn reach_and_witness_find_shortest_chain() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            r#"
            pub fn entry() { middle(); }
            fn middle() { deep(); }
            fn deep() {}
            "#,
        )]);
        let entry = id_of(&g, "a::entry");
        let deep = id_of(&g, "a::deep");
        let parents = g.reach(&[entry]);
        assert!(parents.contains_key(&deep));
        let w = g.witness(&parents, deep);
        assert_eq!(w.len(), 3, "{w:?}");
        assert!(w[0].starts_with("a::entry"), "{w:?}");
        assert!(w[2].starts_with("a::deep"), "{w:?}");
    }

    #[test]
    fn test_fns_are_never_traversed() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            r#"
            pub fn entry() { support(); }
            #[cfg(test)]
            mod tests {
                fn support() { Some(1u32).unwrap(); }
            }
            fn support() {}
            "#,
        )]);
        let entry = id_of(&g, "a::entry");
        let parents = g.reach(&[entry]);
        let reached: Vec<String> = parents.keys().map(|&id| g.nodes[id].qual()).collect();
        assert!(
            reached.contains(&"a::support".to_string()),
            "non-test twin is reached: {reached:?}"
        );
        assert!(
            !reached.contains(&"a::tests::support".to_string()),
            "test fn must not be traversed: {reached:?}"
        );
    }

    #[test]
    fn cost_closure_propagates_to_callers_only() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            r#"
            pub fn hot() { helper(); }
            fn helper() { let s = format!("x"); }
            fn cold() -> u32 { 7 }
            "#,
        )]);
        let mask = g.cost_closure();
        assert_eq!(mask[id_of(&g, "a::helper")], COST_ALLOC, "direct op");
        assert_eq!(mask[id_of(&g, "a::hot")], COST_ALLOC, "inherited");
        assert_eq!(mask[id_of(&g, "a::cold")], 0, "unrelated fn stays clean");
    }

    #[test]
    fn cost_closure_ignores_test_fns() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            r#"
            pub fn hot() {}
            #[cfg(test)]
            mod tests {
                fn noisy() { println!("only in tests"); }
            }
            "#,
        )]);
        let mask = g.cost_closure();
        assert_eq!(mask[id_of(&g, "a::hot")], 0);
        assert_eq!(mask[id_of(&g, "a::tests::noisy")], 0);
    }

    #[test]
    fn hint_narrowing_prefers_matching_type() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            r#"
            impl PartitionCache { pub fn rebuild(&self) {} }
            impl Renderer { pub fn rebuild(&self) {} }
            fn f(&self) { self.cache.rebuild(); }
            "#,
        )]);
        let f = id_of(&g, "a::f");
        assert_eq!(callees(&g, f), ["a::PartitionCache::rebuild"]);
    }
}
