//! The hot-path cost tier L12–L14, powered by [`crate::callgraph`].
//!
//! The paper's annotator sits in the interaction loop every round, so
//! round latency is the product's ceiling. These rules make the latency
//! budget *structural*: `[[hot]]` tables in `et-lint.toml` declare the
//! functions that run once (or more) per round, and the rules walk the
//! workspace call graph from each root, firing on every reachable
//! cost-bearing operation the parser tagged:
//!
//! - **L12** — heap allocation (`Vec::new`/`vec!`/`format!`/`collect`/
//!   `clone`/push-family growth) reachable from a hot root.
//! - **L13** — lock acquisition or a blocking call reachable.
//! - **L14** — I/O or a syscall reachable.
//!
//! A `[[hot]]` pattern that matches no function is itself a finding (the
//! root rotted out from under the config), with a nearest-name suggestion
//! when one is plausible — the same "did you mean" machinery stale
//! `[[allow]]` paths use.
//!
//! Vetted operations (an `[[allow]]` whose reason states the bound) stay
//! out of the violation list but are *not* forgotten: [`check`] also
//! aggregates per-root [`HotRootStat`]s — reachable-fn count, cost-site
//! counts per class, every vetted site with its stated bound, and the
//! deepest witness chain — which `--cost-report` serializes into
//! `HOTPATH.json` for ci.sh to diff against the checked-in baseline. A PR
//! that adds cost to a hot path fails that diff loudly even when every
//! individual site is vetted.
//!
//! Determinism: roots are processed in declaration order, reachable nodes
//! in id order, operations in source order — identical trees produce
//! byte-identical findings and reports.

use crate::allowlist::{suggest_path, Allowlist};
use crate::callgraph::CallGraph;
use crate::graph_rules::GraphFinding;
use crate::parser::CostKind;
use crate::rules::{Rule, Violation};

/// One vetted cost site under a hot root: suppressed by an `[[allow]]`
/// entry whose reason states the bound.
#[derive(Debug, Clone)]
pub struct VettedSite {
    /// Cost class of the operation.
    pub kind: CostKind,
    /// Repo-relative path of the containing file.
    pub path: String,
    /// 1-based line of the operation.
    pub line: usize,
    /// The operation text (`format!`, `collect`, `Vec::with_capacity`).
    pub what: String,
    /// The `[[allow]]` reason — by policy a stated bound.
    pub bound: String,
}

/// Per-`[[hot]]`-table aggregate for the cost report.
#[derive(Debug, Clone)]
pub struct HotRootStat {
    /// The declared pattern.
    pub pattern: String,
    /// The declared note, if any.
    pub note: Option<String>,
    /// Qualified names the pattern matched (id order).
    pub roots: Vec<String>,
    /// Functions reachable from the roots (roots included).
    pub reachable_fns: usize,
    /// Reachable allocation sites (vetted ones included).
    pub alloc_sites: usize,
    /// Reachable lock-acquisition/blocking sites (vetted ones included).
    pub lock_sites: usize,
    /// Reachable I/O sites (vetted ones included).
    pub io_sites: usize,
    /// Every vetted site with its stated bound, in deterministic order.
    pub vetted: Vec<VettedSite>,
    /// Length in hops of the deepest witness chain to a cost-bearing fn
    /// (0 when no reachable fn carries a cost op).
    pub witness_depth: usize,
}

/// The rule a cost class maps onto.
fn rule_for(kind: CostKind) -> Rule {
    match kind {
        CostKind::Alloc => Rule::L12,
        CostKind::Lock => Rule::L13,
        CostKind::Io => Rule::L14,
    }
}

/// Runs L12–L14 over the linked graph: returns the findings (vetted ones
/// included — the engine's allowlist pass suppresses them and tracks entry
/// usage) plus the per-root aggregates for the cost report.
pub fn check(graph: &CallGraph, config: &Allowlist) -> (Vec<GraphFinding>, Vec<HotRootStat>) {
    let mut findings = Vec::new();
    let mut stats = Vec::new();
    if config.hot_roots.is_empty() {
        return (findings, stats);
    }
    let closure = graph.cost_closure();

    for root in &config.hot_roots {
        let entries = graph.match_entries(&root.pattern, false);
        if entries.is_empty() {
            findings.push(stale_root_finding(graph, &root.pattern, root.line));
            stats.push(HotRootStat {
                pattern: root.pattern.clone(),
                note: root.note.clone(),
                roots: Vec::new(),
                reachable_fns: 0,
                alloc_sites: 0,
                lock_sites: 0,
                io_sites: 0,
                vetted: Vec::new(),
                witness_depth: 0,
            });
            continue;
        }
        let mut stat = HotRootStat {
            pattern: root.pattern.clone(),
            note: root.note.clone(),
            roots: entries.iter().map(|&id| graph.nodes[id].qual()).collect(),
            reachable_fns: 0,
            alloc_sites: 0,
            lock_sites: 0,
            io_sites: 0,
            vetted: Vec::new(),
            witness_depth: 0,
        };
        let parents = graph.reach(&entries);
        stat.reachable_fns = parents.len();
        // The closure mask lets a provably-clean root skip the node walk
        // entirely — the common case once the tree is at steady state.
        if entries.iter().all(|&id| closure[id] == 0) {
            stats.push(stat);
            continue;
        }
        for &id in parents.keys() {
            let node = &graph.nodes[id];
            if node.item.costs.is_empty() {
                continue;
            }
            let witness = graph.witness(&parents, id);
            let entry_desc = witness.first().cloned().unwrap_or_else(|| node.qual());
            stat.witness_depth = stat.witness_depth.max(witness.len());
            for op in &node.item.costs {
                match op.kind {
                    CostKind::Alloc => stat.alloc_sites += 1,
                    CostKind::Lock => stat.lock_sites += 1,
                    CostKind::Io => stat.io_sites += 1,
                }
                let violation = Violation {
                    rule: rule_for(op.kind),
                    line: op.line,
                    message: format!(
                        "`{}` is reachable from hot root {} and performs {} `{}`",
                        node.qual(),
                        entry_desc,
                        op.kind.label(),
                        op.what
                    ),
                    excerpt: op.line_text.clone(),
                };
                if let Some(&idx) = config.matches(&node.file, &violation).first() {
                    stat.vetted.push(VettedSite {
                        kind: op.kind,
                        path: node.file.clone(),
                        line: op.line,
                        what: op.what.clone(),
                        bound: config.entries[idx].reason.clone(),
                    });
                }
                findings.push(GraphFinding {
                    path: node.file.clone(),
                    violation,
                    witness: witness.clone(),
                });
            }
        }
        stats.push(stat);
    }
    (findings, stats)
}

/// A `[[hot]]` pattern that matches nothing: the hot root moved or was
/// renamed, and the budget it declared is silently unenforced. Reported
/// at the table's line in `et-lint.toml`, with the nearest qualified name
/// suggested when plausible.
fn stale_root_finding(graph: &CallGraph, pattern: &str, line: usize) -> GraphFinding {
    // Reuse the path-suggestion machinery: qualified names are paths with
    // `::` separators, so map to '/' for the suffix-wise edit distance and
    // back for display.
    let candidates: Vec<String> = graph
        .nodes
        .iter()
        .filter(|n| !n.item.is_test)
        .map(|n| n.qual().replace("::", "/"))
        .collect();
    let hint = suggest_path(&pattern.replace("::", "/"), &candidates)
        .map(|s| format!("; did you mean `{}`?", s.replace('/', "::")))
        .unwrap_or_default();
    GraphFinding {
        path: "et-lint.toml".to_string(),
        violation: Violation {
            rule: Rule::L12,
            line,
            message: format!(
                "[[hot]] pattern `{pattern}` matches no function in the workspace \
                 call graph{hint}"
            ),
            excerpt: format!("pattern = \"{pattern}\""),
        },
        witness: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::parser::{parse, FileAst};

    fn run(files: &[(&str, &str)], config: &str) -> (Vec<GraphFinding>, Vec<HotRootStat>) {
        let parsed: Vec<(String, FileAst)> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), parse(src)))
            .collect();
        let graph = CallGraph::link(&parsed);
        let allow = Allowlist::parse(config).expect("test config parses");
        check(&graph, &allow)
    }

    const SRC: &str = r#"
        pub fn score_all(xs: &[u64]) -> u64 { fold_words(xs) }
        fn fold_words(xs: &[u64]) -> u64 {
            let label = format!("{} words", xs.len());
            label.len() as u64
        }
        pub fn label_pending(&mut self) {
            let g = self.store_lock.lock();
            std::fs::write("journal", "x");
        }
        fn untouched() { let v = vec![1, 2, 3]; }
    "#;

    #[test]
    fn no_hot_roots_means_no_findings() {
        let (findings, stats) = run(&[("crates/a/src/api.rs", SRC)], "");
        assert!(findings.is_empty(), "{findings:?}");
        assert!(stats.is_empty());
    }

    #[test]
    fn l12_fires_on_transitive_alloc_with_witness() {
        let (findings, stats) = run(
            &[("crates/a/src/api.rs", SRC)],
            "[[hot]]\npattern = \"api::score_all\"\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.violation.rule.id(), "L12");
        assert!(
            f.violation.message.contains("api::fold_words")
                && f.violation.message.contains("format!"),
            "{}",
            f.violation.message
        );
        assert_eq!(
            f.witness.len(),
            2,
            "score_all -> fold_words: {:?}",
            f.witness
        );
        assert!(f.witness[0].contains("api::score_all"), "{:?}", f.witness);
        assert!(
            !findings
                .iter()
                .any(|f| f.violation.message.contains("untouched")),
            "unreachable alloc must not fire: {findings:?}"
        );
        let s = &stats[0];
        assert_eq!(s.roots, ["a::api::score_all"]);
        assert_eq!(s.reachable_fns, 2);
        assert_eq!(
            (s.alloc_sites, s.lock_sites, s.io_sites, s.witness_depth),
            (1, 0, 0, 2),
            "{s:?}"
        );
    }

    #[test]
    fn l13_and_l14_fire_on_direct_ops() {
        let (findings, _) = run(
            &[("crates/a/src/api.rs", SRC)],
            "[[hot]]\npattern = \"api::label_pending\"\nnote = \"per-round\"\n",
        );
        let rules: Vec<&str> = findings.iter().map(|f| f.violation.rule.id()).collect();
        assert_eq!(rules, ["L13", "L14"], "{findings:?}");
    }

    #[test]
    fn vetted_sites_still_counted_and_carry_bounds() {
        let config = "[[hot]]\npattern = \"api::score_all\"\n\
                      [[allow]]\nrule = \"L12\"\npath = \"crates/a/src/api.rs\"\n\
                      pattern = \"format!\"\n\
                      reason = \"bounded: one label per call, N <= 64 bytes\"\n";
        let (findings, stats) = run(&[("crates/a/src/api.rs", SRC)], config);
        // The finding is still emitted; the engine's allowlist pass
        // suppresses it downstream.
        assert_eq!(findings.len(), 1);
        let s = &stats[0];
        assert_eq!(s.alloc_sites, 1, "vetted sites still counted");
        assert_eq!(s.vetted.len(), 1);
        assert_eq!(
            s.vetted[0].bound,
            "bounded: one label per call, N <= 64 bytes"
        );
        assert_eq!(s.vetted[0].what, "format!");
    }

    #[test]
    fn stale_hot_root_fires_with_suggestion() {
        let (findings, _) = run(
            &[("crates/a/src/api.rs", SRC)],
            "[[hot]]\npattern = \"api::scoer_all\"\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.path, "et-lint.toml");
        assert!(
            f.violation.message.contains("matches no function"),
            "{}",
            f.violation.message
        );
        assert!(
            f.violation.message.contains("did you mean")
                && f.violation.message.contains("a::api::score_all"),
            "suggestion machinery engaged: {}",
            f.violation.message
        );
    }

    #[test]
    fn clean_hot_root_reports_zero_cost() {
        let src = r#"
            pub fn hot(xs: &[u64]) -> u64 { helper(xs) }
            fn helper(xs: &[u64]) -> u64 { xs.len() as u64 }
        "#;
        let (findings, stats) = run(
            &[("crates/a/src/api.rs", src)],
            "[[hot]]\npattern = \"api::hot\"\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
        let s = &stats[0];
        assert_eq!(s.reachable_fns, 2);
        assert_eq!((s.alloc_sites, s.lock_sites, s.io_sites), (0, 0, 0));
        assert_eq!(s.witness_depth, 0);
    }
}
