//! The four repo-specific lint rules.
//!
//! All rules work on masked source (see [`crate::mask`]): string and comment
//! contents never trigger tokens. "Test code" means byte regions covered by a
//! `#[cfg(test)]` item (plus whole files under `tests/` or `benches/`).

use crate::mask::Masked;

/// Which rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No `unwrap()`/`expect()`/`panic!` in non-test library code.
    L1,
    /// No unseeded RNG anywhere (`thread_rng`, `from_entropy`, `rand::random`).
    L2,
    /// No `==`/`!=` against f64 expressions outside tests.
    L3,
    /// Panicking `pub fn`s must document `# Panics`.
    L4,
}

impl Rule {
    /// The stable rule identifier used in reports and `et-lint.toml`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
        }
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::L1 => "no unwrap()/expect()/panic! in non-test library code",
            Rule::L2 => "no unseeded RNG (thread_rng/from_entropy/rand::random) anywhere",
            Rule::L3 => "no ==/!= between f64 expressions outside tests",
            Rule::L4 => "pub fns that can panic must carry a `# Panics` doc section",
        }
    }

    /// All rules, in report order.
    pub fn all() -> [Rule; 4] {
        [Rule::L1, Rule::L2, Rule::L3, Rule::L4]
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule that fired.
    pub rule: Rule,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Crate `src/` code: all rules apply outside `#[cfg(test)]` regions.
    Library,
    /// Integration tests, benches, examples: only L2 applies.
    TestLike,
}

/// Byte ranges covered by `#[cfg(test)]` items.
fn test_regions(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_from(code, "#[cfg(test)]", from) {
        from = pos + 1;
        // The attribute governs the next item; its body is the next
        // brace-balanced block (covers `mod tests { .. }` and `fn x() { .. }`).
        let Some(open) = code[pos..].find('{').map(|o| pos + o) else {
            continue;
        };
        let mut depth = 0usize;
        let mut end = bytes.len();
        for (k, &b) in bytes.iter().enumerate().skip(open) {
            if b == b'{' {
                depth += 1;
            } else if b == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            }
        }
        regions.push((pos, end));
        from = end;
    }
    regions
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|p| p + from)
}

fn in_regions(regions: &[(usize, usize)], pos: usize) -> bool {
    regions.iter().any(|&(a, b)| pos >= a && pos < b)
}

fn line_of(code: &str, pos: usize) -> usize {
    code.as_bytes()[..pos]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

fn excerpt_line(original: &str, line: usize) -> String {
    original
        .lines()
        .nth(line - 1)
        .unwrap_or_default()
        .trim()
        .to_string()
}

/// True when `code[pos]` starts `token` at an identifier boundary. The
/// boundary test only applies when the token itself begins with an
/// identifier character (`.unwrap()` legitimately follows an identifier).
fn token_at(code: &str, pos: usize, token: &str) -> bool {
    if !code[pos..].starts_with(token) {
        return false;
    }
    let first = token.as_bytes()[0];
    if (first.is_ascii_alphanumeric() || first == b'_') && pos > 0 {
        let prev = code.as_bytes()[pos - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    true
}

/// Finds identifier-boundary occurrences of `token` in `code`.
fn token_positions(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_from(code, token, from) {
        if token_at(code, pos, token) {
            out.push(pos);
        }
        from = pos + 1;
    }
    out
}

/// Runs every applicable rule over one masked file.
pub fn check_file(masked: &Masked, original: &str, kind: FileKind) -> Vec<Violation> {
    let mut out = Vec::new();
    let regions = test_regions(&masked.code);

    l2_unseeded_rng(masked, original, &mut out);
    if kind == FileKind::Library {
        l1_no_panics(masked, original, &regions, &mut out);
        l3_float_eq(masked, original, &regions, &mut out);
        l4_panics_doc(masked, original, &regions, &mut out);
    }

    out.sort_by_key(|v| (v.line, v.rule.id()));
    out
}

/// L1: `.unwrap()`, `.expect(`, `panic!` in non-test library code.
fn l1_no_panics(
    masked: &Masked,
    original: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    const BANNED: [(&str, &str); 3] = [
        (".unwrap()", "use a typed error or document the invariant"),
        (".expect(", "use a typed error or document the invariant"),
        (
            "panic!",
            "return an error instead of panicking in library code",
        ),
    ];
    for (needle, hint) in BANNED {
        for pos in token_positions(&masked.code, needle) {
            if in_regions(regions, pos) {
                continue;
            }
            let line = line_of(&masked.code, pos);
            out.push(Violation {
                rule: Rule::L1,
                line,
                message: format!("`{}` in library code; {hint}", needle.trim_matches('.')),
                excerpt: excerpt_line(original, line),
            });
        }
    }
}

/// L2: unseeded RNG constructors anywhere, test code included.
fn l2_unseeded_rng(masked: &Masked, original: &str, out: &mut Vec<Violation>) {
    const BANNED: [&str; 3] = ["thread_rng", "from_entropy", "rand::random"];
    for needle in BANNED {
        for pos in token_positions(&masked.code, needle) {
            let line = line_of(&masked.code, pos);
            out.push(Violation {
                rule: Rule::L2,
                line,
                message: format!(
                    "`{needle}` draws entropy; every generator must be seeded \
                     (determinism is load-bearing for the reproduction)"
                ),
                excerpt: excerpt_line(original, line),
            });
        }
    }
}

/// L3: `==`/`!=` where one operand is a float literal (or an expression
/// ending in `as f64`), outside tests. Lexical by design: the 100%-precise
/// version of this check is `clippy::float_cmp`, which the workspace also
/// enables; this rule catches the idiom clippy misses in macro output.
fn l3_float_eq(
    masked: &Masked,
    original: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let code = &masked.code;
    let bytes = code.as_bytes();
    for op in ["==", "!="] {
        for pos in token_positions_raw(code, op) {
            if in_regions(regions, pos) {
                continue;
            }
            // `!=` positions also match the tail of `!==`? No such token in
            // Rust; but `<=`/`>=`/`=>`/`=` must not be confused with `==`:
            // check the byte before `==` is not `=`, `<`, `>`, `!`.
            if op == "==" {
                if pos > 0 && matches!(bytes[pos - 1], b'=' | b'<' | b'>' | b'!') {
                    continue;
                }
                if bytes.get(pos + 2) == Some(&b'=') {
                    continue;
                }
            }
            let lhs = left_operand(code, pos);
            let rhs = right_operand(code, pos + op.len());
            if is_floatish(lhs) || is_floatish(rhs) {
                let line = line_of(code, pos);
                out.push(Violation {
                    rule: Rule::L3,
                    line,
                    message: format!(
                        "float compared with `{op}`; use an epsilon or total_cmp \
                         (lhs `{}`, rhs `{}`)",
                        lhs.trim(),
                        rhs.trim()
                    ),
                    excerpt: excerpt_line(original, line),
                });
            }
        }
    }
}

/// Occurrences of a non-identifier token (no boundary check applies).
fn token_positions_raw(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_from(code, token, from) {
        out.push(pos);
        from = pos + token.len();
    }
    out
}

/// The expression text immediately left of an operator, scanned to the
/// nearest low-precedence boundary.
fn left_operand(code: &str, op_pos: usize) -> &str {
    let bytes = code.as_bytes();
    let mut i = op_pos;
    let mut depth = 0i32;
    while i > 0 {
        let b = bytes[i - 1];
        match b {
            b')' | b']' => depth += 1,
            b'(' | b'[' | b'{' | b',' | b';' if depth == 0 => break,
            b'(' | b'[' => depth -= 1,
            b'&' | b'|' | b'=' | b'<' | b'>' if depth == 0 => break,
            b'\n' if depth == 0 => break,
            _ => {}
        }
        i -= 1;
    }
    code[i..op_pos].trim()
}

/// The expression text immediately right of an operator.
fn right_operand(code: &str, after_op: usize) -> &str {
    let bytes = code.as_bytes();
    let mut i = after_op;
    let mut depth = 0i32;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' | b'}' | b',' | b';' if depth == 0 => break,
            b')' | b']' => depth -= 1,
            b'&' | b'|' | b'<' | b'>' if depth == 0 => break,
            b'\n' if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    code[after_op..i].trim()
}

/// True when the operand text clearly denotes an f64: a float literal
/// (`0.5`, `1e-9`, `2f64`) or a trailing `as f64` cast.
fn is_floatish(expr: &str) -> bool {
    let expr = expr.trim();
    if expr.ends_with("as f64") || expr.ends_with("as f32") {
        return true;
    }
    has_float_literal(expr)
}

fn has_float_literal(expr: &str) -> bool {
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            // Not part of an identifier like `x0`.
            if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
                i += 1;
                continue;
            }
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
            // `12.`, `12.5`
            if i < bytes.len() && bytes[i] == b'.' {
                if i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    // range `0..n`
                    i += 2;
                    continue;
                }
                return true;
            }
            // `1e-9`, `2f64`
            let rest = &expr[i..];
            if rest.starts_with('e') || rest.starts_with("f64") || rest.starts_with("f32") {
                let after_e = rest.strip_prefix('e').unwrap_or("");
                if rest.starts_with('f')
                    || after_e.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '+')
                {
                    return true;
                }
            }
            let _ = start;
        } else {
            i += 1;
        }
    }
    false
}

/// L4: a `pub fn` whose body contains `assert!`/`assert_eq!`/`assert_ne!`/
/// `panic!` must have a doc comment with a `# Panics` section.
fn l4_panics_doc(
    masked: &Masked,
    original: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let code = &masked.code;
    let bytes = code.as_bytes();
    for fn_pos in token_positions(code, "fn ") {
        let Some(pos) = pub_fn_start(code, fn_pos) else {
            continue;
        };
        if in_regions(regions, pos) {
            continue;
        }
        // Body: first `{` after the signature, brace-matched.
        let Some(open) = find_from(code, "{", fn_pos) else {
            continue;
        };
        let mut depth = 0usize;
        let mut end = bytes.len();
        for (k, &b) in bytes.iter().enumerate().skip(open) {
            if b == b'{' {
                depth += 1;
            } else if b == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            }
        }
        let body = &code[open..end];
        let panics = ["assert!", "assert_eq!", "assert_ne!", "panic!"]
            .iter()
            .any(|t| body_has_token(body, t));
        if !panics {
            continue;
        }
        let line = line_of(code, pos);
        if doc_block_has_panics(&masked.with_comments, line) {
            continue;
        }
        let name = code[fn_pos + "fn ".len()..]
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .next()
            .unwrap_or("?")
            .to_string();
        out.push(Violation {
            rule: Rule::L4,
            line,
            message: format!(
                "`pub fn {name}` can panic (assert/panic in body) but its doc \
                 comment has no `# Panics` section"
            ),
            excerpt: excerpt_line(original, line),
        });
    }
}

/// For an `fn ` keyword at `fn_pos`, returns the start of its `pub`
/// visibility token if the fn is exactly `pub` (not `pub(crate)`), walking
/// back over the `const`/`async`/`unsafe` modifiers.
fn pub_fn_start(code: &str, fn_pos: usize) -> Option<usize> {
    let mut end = fn_pos;
    loop {
        let before = code[..end].trim_end();
        let word_start = before
            .rfind(|c: char| !c.is_alphanumeric() && c != '_')
            .map_or(0, |p| p + 1);
        match &before[word_start..] {
            "const" | "async" | "unsafe" => end = word_start,
            "pub" => return Some(word_start),
            _ => return None,
        }
    }
}

fn body_has_token(body: &str, token: &str) -> bool {
    token_positions(body, token)
        .iter()
        .any(|&p| !body[..p].ends_with("debug_"))
}

/// Walks upward from the line above `fn_line`, across attributes, collecting
/// the contiguous `///` block; true when it contains `# Panics`.
fn doc_block_has_panics(with_comments: &str, fn_line: usize) -> bool {
    let lines: Vec<&str> = with_comments.lines().collect();
    let mut i = fn_line.saturating_sub(1); // index of the fn line
    while i > 0 {
        let prev = lines[i - 1].trim_start();
        if prev.starts_with("#[") || prev.starts_with("#!") {
            i -= 1;
        } else {
            break;
        }
    }
    let mut saw_panics = false;
    while i > 0 {
        let prev = lines[i - 1].trim_start();
        if prev.starts_with("///") {
            if prev.contains("# Panics") {
                saw_panics = true;
            }
            i -= 1;
        } else if prev.starts_with("#[") {
            // Attributes interleaved with docs (e.g. `#[must_use]`).
            i -= 1;
        } else {
            break;
        }
    }
    saw_panics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::mask;

    fn check(src: &str, kind: FileKind) -> Vec<Violation> {
        check_file(&mask(src), src, kind)
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule.id()).collect()
    }

    #[test]
    fn l1_fires_on_unwrap_expect_panic() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   pub fn g(x: Option<u32>) -> u32 { x.expect(\"oops\") }\n\
                   pub fn h() { panic!(\"boom\"); }\n";
        let v = check(src, FileKind::Library);
        // `h` both panics in library code (L1) and lacks a `# Panics`
        // section (L4).
        assert_eq!(rules_of(&v), ["L1", "L1", "L1", "L4"]);
    }

    #[test]
    fn l1_ignores_tests_and_testlike_files() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(check(src, FileKind::Library).is_empty());
        let bench = "fn main() { None::<u32>.unwrap(); }";
        assert!(check(bench, FileKind::TestLike).is_empty());
    }

    #[test]
    fn l1_ignores_strings_comments_and_debug_assert() {
        let src = "// panic! here is prose\npub fn f() { let _ = \"don't panic!\"; }\n\
                   pub fn g() { debug_assert!(true); }\n";
        let v = check(src, FileKind::Library);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l2_fires_everywhere_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let mut r = rand::thread_rng(); }\n}\n";
        let v = check(src, FileKind::Library);
        assert_eq!(rules_of(&v), ["L2"]);
        let bench = "fn main() { let r = StdRng::from_entropy(); let x: f64 = rand::random(); }";
        let v = check(bench, FileKind::TestLike);
        assert_eq!(rules_of(&v), ["L2", "L2"]);
    }

    #[test]
    fn l3_fires_on_float_literal_comparison() {
        let src = "pub fn f(x: f64) -> bool { x == 0.5 }\n\
                   pub fn g(x: f64) -> bool { 1.0 != x }\n\
                   pub fn h(n: usize) -> bool { n as f64 == total() }\n";
        let v = check(src, FileKind::Library);
        assert_eq!(rules_of(&v), ["L3", "L3", "L3"]);
    }

    #[test]
    fn l3_ignores_integers_ranges_and_tests() {
        let src = "pub fn f(x: usize) -> bool { x == 10 }\n\
                   pub fn g(x: usize) -> bool { (0..5).contains(&x) && x != 3 }\n\
                   pub fn ver(s: &str) -> bool { s == \"1.0\" }\n\
                   #[cfg(test)]\nmod tests { fn t(x: f64) -> bool { x == 0.5 } }\n";
        let v = check(src, FileKind::Library);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l3_not_confused_by_other_operators() {
        let src = "pub fn f(x: f64) -> bool { x <= 0.5 && x >= 0.1 }\n\
                   pub fn g(x: f64) -> f64 { let y = 0.5; y }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn l4_requires_panics_doc() {
        let bad = "/// Does things.\npub fn f(x: usize) { assert!(x > 0); }\n";
        let v = check(bad, FileKind::Library);
        assert_eq!(rules_of(&v), ["L4"]);

        let good = "/// Does things.\n///\n/// # Panics\n/// Panics when x is 0.\n\
                    pub fn f(x: usize) { assert!(x > 0); }\n";
        assert!(check(good, FileKind::Library).is_empty());
    }

    #[test]
    fn l4_skips_private_fns_debug_asserts_and_tests() {
        let src = "fn private(x: usize) { assert!(x > 0); }\n\
                   pub fn soft(x: usize) { debug_assert!(x > 0); }\n\
                   #[cfg(test)]\nmod tests { pub fn t() { assert!(true); } }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn l4_sees_docs_across_attributes() {
        let src = "/// Docs.\n///\n/// # Panics\n/// On bad input.\n#[must_use]\n\
                   pub fn f(x: usize) -> usize { assert!(x > 0); x }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn violations_carry_lines_and_excerpts() {
        let src = "fn a() {}\n\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = check(src, FileKind::Library);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert!(v[0].excerpt.contains("pub fn f"));
    }
}
