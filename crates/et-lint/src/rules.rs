//! The repo-specific lint rules (L1–L14).
//!
//! All rules work on masked source (see [`crate::mask`]): string and comment
//! contents never trigger tokens. "Test code" means byte regions covered by a
//! `#[cfg(test)]` item (plus whole files under `tests/` or `benches/`).

use crate::mask::Masked;

/// Which rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No `unwrap()`/`expect()`/`panic!` in non-test library code.
    L1,
    /// No unseeded RNG anywhere (`thread_rng`, `from_entropy`, `rand::random`).
    L2,
    /// No `==`/`!=` against f64 expressions outside tests.
    L3,
    /// Panicking `pub fn`s must document `# Panics`.
    L4,
    /// No mutex guard held across a blocking call.
    L5,
    /// Atomic `Ordering` arguments need a trailing `// ord:` justification.
    L6,
    /// No truncating `as` casts between numeric types in library code.
    L7,
    /// No hash-container iteration feeding order-sensitive sinks.
    L8,
    /// No panic-capable operation reachable from public API entry points
    /// (interprocedural; entry patterns in `et-lint.toml`).
    L9,
    /// No cycle in the workspace lock-acquisition order graph.
    L10,
    /// No nondeterminism source reachable from session scoring/step/replay
    /// entry points (sources and entries in `et-lint.toml`).
    L11,
    /// No heap allocation reachable from a declared `[[hot]]` root
    /// (interprocedural cost model; roots in `et-lint.toml`).
    L12,
    /// No lock acquisition or blocking call reachable from a `[[hot]]` root.
    L13,
    /// No I/O or syscall reachable from a `[[hot]]` root.
    L14,
}

impl Rule {
    /// The stable rule identifier used in reports and `et-lint.toml`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
            Rule::L6 => "L6",
            Rule::L7 => "L7",
            Rule::L8 => "L8",
            Rule::L9 => "L9",
            Rule::L10 => "L10",
            Rule::L11 => "L11",
            Rule::L12 => "L12",
            Rule::L13 => "L13",
            Rule::L14 => "L14",
        }
    }

    /// Parses a rule id.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::all().into_iter().find(|r| r.id() == id)
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::L1 => "no unwrap()/expect()/panic! in non-test library code",
            Rule::L2 => "no unseeded RNG (thread_rng/from_entropy/rand::random) anywhere",
            Rule::L3 => "no ==/!= between f64 expressions outside tests",
            Rule::L4 => "pub fns that can panic must carry a `# Panics` doc section",
            Rule::L5 => {
                "no mutex guard held across a blocking call (recv/accept/read_line/join/connect)"
            }
            Rule::L6 => "every atomic Ordering argument needs an `// ord:` justification comment",
            Rule::L7 => "no truncating `as` casts between numeric types in library code",
            Rule::L8 => "no HashMap/HashSet iteration feeding order-sensitive sinks unless sorted",
            Rule::L9 => {
                "no panic-capable op (panic!/unwrap/expect/indexing) reachable from public API \
                 entry points"
            }
            Rule::L10 => "no cycle in the workspace lock-acquisition order graph",
            Rule::L11 => {
                "no nondeterminism source (wall clock, OS entropy, hash iteration) reachable \
                 from session entry points"
            }
            Rule::L12 => {
                "no heap allocation (Vec::new/vec!/format!/collect/clone/to_vec) reachable \
                 from a [[hot]] root"
            }
            Rule::L13 => "no lock acquisition or blocking call reachable from a [[hot]] root",
            Rule::L14 => {
                "no I/O or syscall (std::fs/net/io, println!, spawn) reachable from a [[hot]] root"
            }
        }
    }

    /// The full rationale plus the `et-lint.toml` exception format,
    /// printed by `cargo lint -- --explain L<N>`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::L1 => {
                "L1 — no unwrap()/expect()/panic! in non-test library code.\n\n\
                 Why: the reproduction's claims are floating-point and RNG-sensitive;\n\
                 a panic in library code turns a recoverable bad input into a dead\n\
                 worker thread, and under et-serve load that silently shrinks the\n\
                 worker pool instead of failing a test. Return typed errors.\n\n\
                 Exception: add to et-lint.toml when the invariant is structural\n\
                 (provable from adjacent code) and a typed error would obscure it:\n\n\
                 [[allow]]\n\
                 rule = \"L1\"\n\
                 path = \"crates/<crate>/src/<file>.rs\"\n\
                 pattern = \"<substring of the offending line>\"\n\
                 reason = \"<why the panic is unreachable>\""
            }
            Rule::L2 => {
                "L2 — no unseeded RNG anywhere, tests included.\n\n\
                 Why: every figure in the reproduction must be re-derivable from a\n\
                 seed. thread_rng/from_entropy/rand::random draw OS entropy, so a\n\
                 rerun can never bit-match and a flaky test can never be replayed.\n\
                 Use StdRng::seed_from_u64 (or the session's SplitMix64 derivation).\n\n\
                 Exception format (rarely justified):\n\n\
                 [[allow]]\n\
                 rule = \"L2\"\n\
                 path = \"...\"\n\
                 reason = \"...\""
            }
            Rule::L3 => {
                "L3 — no ==/!= against f64 expressions outside tests.\n\n\
                 Why: MAE curves and g1 measures accumulate rounding; exact float\n\
                 equality encodes an assumption the math does not guarantee and\n\
                 flips silently across optimization levels. Compare with an epsilon\n\
                 or total_cmp. The rule is lexical; clippy::float_cmp is the precise\n\
                 companion check.\n\n\
                 Exception format:\n\n\
                 [[allow]]\n\
                 rule = \"L3\"\n\
                 path = \"...\"\n\
                 reason = \"...\""
            }
            Rule::L4 => {
                "L4 — pub fns that can panic must carry a `# Panics` doc section.\n\n\
                 Why: a caller in another crate cannot see an assert! in the body;\n\
                 the doc section is the contract that makes the panic reviewable at\n\
                 the call site.\n\n\
                 Exception format:\n\n\
                 [[allow]]\n\
                 rule = \"L4\"\n\
                 path = \"...\"\n\
                 reason = \"e.g. doc inherited from trait\""
            }
            Rule::L5 => {
                "L5 — no mutex guard held across a blocking call.\n\n\
                 Why: et-serve shards its session store behind Mutex<HashMap>; a\n\
                 guard held across recv/recv_timeout/accept/read_line/join or\n\
                 TcpStream::connect stalls every thread contending for that shard\n\
                 for the full wait. Nothing crashes — throughput just collapses,\n\
                 which is exactly the failure mode functional tests cannot see.\n\
                 Detection tracks `let g = ….lock()` bindings to the enclosing\n\
                 block close (or an explicit drop(g)).\n\n\
                 Exception: when the wait is deliberately inside the lock (e.g. a\n\
                 shared-receiver worker pool with a bounded poll):\n\n\
                 [[allow]]\n\
                 rule = \"L5\"\n\
                 path = \"crates/et-serve/src/server.rs\"\n\
                 pattern = \"recv_timeout\"\n\
                 reason = \"bounded 250ms poll; the guard must cover the recv by design\""
            }
            Rule::L6 => {
                "L6 — every atomic Ordering argument carries an `// ord:`\n\
                 justification, either trailing on the same line or as a\n\
                 standalone comment on the line immediately above (the placement\n\
                 rustfmt keeps for `{`-ending statements); an `// ord:` comment\n\
                 that justifies no use is stale and also fires.\n\n\
                 Why: the store mixes Relaxed counters with AcqRel capacity\n\
                 reservation. A too-weak ordering loses counts only under real\n\
                 concurrency, so the choice must be reviewable in place — the\n\
                 comment states what the ordering synchronizes with, making drift\n\
                 between code and justification a lint failure in both directions.\n\n\
                 There is no allowlist escape for a missing justification: write\n\
                 the comment. Format: `x.load(Ordering::Acquire); // ord: pairs\n\
                 with the Release store in shutdown()`."
            }
            Rule::L7 => {
                "L7 — no truncating `as` cast between numeric types in non-test\n\
                 library code.\n\n\
                 Why: `as` wraps silently. A u64 session counter cast to u32, or an\n\
                 f64 metric cast to usize, corrupts figures and wire ids without a\n\
                 panic. Use From (widening) or try_from (checked) instead. Source\n\
                 types are inferred lexically (suffixes, cast chains, .len()/.round(),\n\
                 float arithmetic in parens); unknown sources fire only on narrow\n\
                 targets (u8/i8/u16/i16/u32/i32/f32).\n\n\
                 Exception: when the value is bounded by construction:\n\n\
                 [[allow]]\n\
                 rule = \"L7\"\n\
                 path = \"crates/et-fd/src/partitions.rs\"\n\
                 pattern = \"row as u32\"\n\
                 reason = \"row ids are u32 by design; tables are far below 2^32 rows\""
            }
            Rule::L8 => {
                "L8 — no iteration over HashMap/HashSet whose items feed a return\n\
                 value, Vec push, or serialization, unless sorted or rehomed into a\n\
                 BTreeMap/BTreeSet.\n\n\
                 Why: hash iteration order is randomized per process. Letting it\n\
                 reach the wire or a replay file makes responses non-byte-stable, so\n\
                 replays and golden files diverge run to run. Order-insensitive\n\
                 reductions (sum/count/min/max/all/any/product) are exempt; a\n\
                 `.sort*` on the collected result anywhere in the same block\n\
                 satisfies the rule.\n\n\
                 Exception: when downstream order is provably irrelevant:\n\n\
                 [[allow]]\n\
                 rule = \"L8\"\n\
                 path = \"...\"\n\
                 reason = \"collected ids are removed from the same map; order cannot escape\""
            }
            Rule::L9 => {
                "L9 — no panic-capable operation reachable from a public API entry\n\
                 point (the interprocedural closure of L1).\n\n\
                 Why: L1 keeps unwrap()/panic! out of individual library lines, but\n\
                 a clean-looking handler can still transitively call a helper that\n\
                 indexes a slice or asserts. Under et-serve load that panic kills a\n\
                 worker thread silently. L9 builds the workspace call graph, marks\n\
                 every fn matching an `[[entry]]` pattern (rule = \"L9\") as a public\n\
                 entry, and walks the resolved edges: any reachable non-test fn\n\
                 containing panic!/assert-family macros, .unwrap()/.expect(, or an\n\
                 index/slice expression fires, with the witness call chain printed.\n\
                 Entry patterns are substring matches on the qualified fn name\n\
                 (`crate::module::Type::fn`), declared in et-lint.toml:\n\n\
                 [[entry]]\n\
                 rule = \"L9\"\n\
                 pattern = \"SessionState::\"\n\n\
                 Exception: when the operation is provably in-bounds/infallible:\n\n\
                 [[allow]]\n\
                 rule = \"L9\"\n\
                 path = \"crates/<crate>/src/<file>.rs\"\n\
                 pattern = \"<substring of the offending line>\"\n\
                 reason = \"<why the panic is unreachable>\""
            }
            Rule::L10 => {
                "L10 — no cycle in the workspace lock-acquisition order graph.\n\n\
                 Why: et-serve shards its session store behind mutexes and et-fd's\n\
                 PartitionCache holds two more; a thread taking A then B while\n\
                 another takes B then A deadlocks only under contention — the one\n\
                 schedule tests never exercise. L10 extracts per-function lock\n\
                 acquisitions (`.lock()` method calls and calls into lock-gateway\n\
                 helpers, attributed to a lock class like `SessionStore.shards` or\n\
                 `PartitionCache.parts` via receiver/argument field hints), tracks\n\
                 the guard's live region (let-binding to block close, or statement\n\
                 end for temporaries, honoring drop(guard)), propagates acquisitions\n\
                 through the call graph, and fires on any cycle in the resulting\n\
                 lock-order relation, printing one witness edge per hop.\n\n\
                 Exception: when the cycle is a false positive (e.g. two locks\n\
                 provably never held by the same thread):\n\n\
                 [[allow]]\n\
                 rule = \"L10\"\n\
                 path = \"crates/<crate>/src/<file>.rs\"\n\
                 pattern = \"<substring of the witness line>\"\n\
                 reason = \"<why the interleave cannot happen>\""
            }
            Rule::L11 => {
                "L11 — no nondeterminism source reachable from session\n\
                 scoring/step/replay entry points.\n\n\
                 Why: the reproduction's trainer/learner game is deterministic by\n\
                 construction — replayed sessions must be bit-identical to\n\
                 uninterrupted ones. A transitive Instant::now() folded into state,\n\
                 an OS-entropy draw, or an unsorted HashMap iteration breaks that\n\
                 proof invisibly. L11 marks entry fns via `[[entry]]` patterns\n\
                 (rule = \"L11\"), declares taint sources via `[[source]]` patterns\n\
                 matched against rendered call text (`Instant::now`,\n\
                 `SystemTime::now`, `thread_rng`; the special pattern `hash-iter`\n\
                 matches unsorted HashMap/HashSet iteration), and fires on every\n\
                 reachable fn that touches a source, with the per-edge witness\n\
                 chain printed.\n\n\
                 [[source]]\n\
                 rule = \"L11\"\n\
                 pattern = \"Instant::now\"\n\n\
                 Exception: when the source provably never feeds session state\n\
                 (e.g. logging-only timing):\n\n\
                 [[allow]]\n\
                 rule = \"L11\"\n\
                 path = \"crates/<crate>/src/<file>.rs\"\n\
                 pattern = \"<substring of the offending line>\"\n\
                 reason = \"<why the value cannot reach state>\""
            }
            Rule::L12 => {
                "L12 — no heap allocation reachable from a declared hot root.\n\n\
                 Why: the annotator sits in the loop every round, so round latency\n\
                 is the product's ceiling. A stray collect()/format!/to_vec in\n\
                 RelationMatrix::score_all or a strategy fold eats the per-round\n\
                 budget invisibly until a bench run notices. L12 marks every fn\n\
                 matching a `[[hot]]` pattern (same substring matching as\n\
                 `[[entry]]`) as a hot root, walks the resolved call graph, and\n\
                 fires on every reachable non-test fn containing an allocating\n\
                 operation (Vec::new/with_capacity/vec!/Box::new/String::from/\n\
                 format!/to_vec/to_string/clone/collect/push-family growth), with\n\
                 the witness call chain printed. Hoist temporaries into reusable\n\
                 scratch buffers owned by the caller instead.\n\n\
                 [[hot]]\n\
                 pattern = \"RelationMatrix::score_all\"\n\
                 note = \"inner scoring loop; ROADMAP item 4 latency ceiling\"\n\n\
                 Exception: when the allocation is provably one-time setup or\n\
                 bounded (state the bound — it is surfaced in HOTPATH.json):\n\n\
                 [[allow]]\n\
                 rule = \"L12\"\n\
                 path = \"crates/<crate>/src/<file>.rs\"\n\
                 pattern = \"<substring of the offending line>\"\n\
                 reason = \"bounded: <the bound, e.g. with_capacity once per session>\""
            }
            Rule::L13 => {
                "L13 — no lock acquisition or blocking call reachable from a\n\
                 declared hot root.\n\n\
                 Why: a hot path that takes a Mutex/RwLock — or blocks on\n\
                 recv/join/sleep — couples round latency to scheduler contention;\n\
                 the p99 collapses under load with no functional failure. L13\n\
                 reuses the L5/L10 lock-site extraction (`.lock()`, `.read()`/\n\
                 `.write()` on lock-ish receivers) plus the blocking-call list,\n\
                 and fires on every fn reachable from a `[[hot]]` pattern that\n\
                 acquires or blocks, with the witness chain printed. Hot paths\n\
                 should be handed owned or immutable-borrowed data instead.\n\n\
                 [[hot]]\n\
                 pattern = \"SessionState::apply_labels\"\n\
                 note = \"label application minus the journal append\"\n\n\
                 Exception: when the acquisition is provably uncontended or\n\
                 bounded (state the bound):\n\n\
                 [[allow]]\n\
                 rule = \"L13\"\n\
                 path = \"crates/<crate>/src/<file>.rs\"\n\
                 pattern = \"<substring of the offending line>\"\n\
                 reason = \"bounded: <why the wait cannot exceed the budget>\""
            }
            Rule::L14 => {
                "L14 — no I/O or syscall reachable from a declared hot root.\n\n\
                 Why: one transitive println! or fs::write in a scoring loop adds\n\
                 a syscall (and possibly a flush) per round; a journal fsync in\n\
                 the wrong place adds milliseconds. I/O belongs at the round\n\
                 boundary, not inside it. L14 tags std::fs/std::net/std::io\n\
                 calls, print-family macros, File:: operations, sync_all/fsync\n\
                 and thread::spawn, and fires on every fn reachable from a\n\
                 `[[hot]]` pattern that performs one, with the witness chain\n\
                 printed.\n\n\
                 [[hot]]\n\
                 pattern = \"RelationMatrix::score_all\"\n\
                 note = \"inner scoring loop\"\n\n\
                 Exception: when the I/O is deliberate and bounded (state the\n\
                 bound — e.g. an acknowledged write-ahead append the caller\n\
                 already budgets for):\n\n\
                 [[allow]]\n\
                 rule = \"L14\"\n\
                 path = \"crates/<crate>/src/<file>.rs\"\n\
                 pattern = \"<substring of the offending line>\"\n\
                 reason = \"bounded: <why this I/O is part of the contract>\""
            }
        }
    }

    /// All rules, in report order.
    pub fn all() -> [Rule; 14] {
        [
            Rule::L1,
            Rule::L2,
            Rule::L3,
            Rule::L4,
            Rule::L5,
            Rule::L6,
            Rule::L7,
            Rule::L8,
            Rule::L9,
            Rule::L10,
            Rule::L11,
            Rule::L12,
            Rule::L13,
            Rule::L14,
        ]
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule that fired.
    pub rule: Rule,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Crate `src/` code: all rules apply outside `#[cfg(test)]` regions.
    Library,
    /// Integration tests, benches, examples: only L2 applies.
    TestLike,
}

/// Byte ranges covered by `#[cfg(test)]` items, computed on masked source
/// (offsets are valid for the original because masking preserves length).
/// Exposed for the token-level rule tests in [`crate::conc_rules`].
#[cfg(test)]
pub(crate) fn test_regions_for(source: &str) -> Vec<(usize, usize)> {
    test_regions(&crate::mask::mask(source).code)
}

/// Byte ranges covered by `#[cfg(test)]` items.
fn test_regions(code: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let mut regions = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_from(code, "#[cfg(test)]", from) {
        from = pos + 1;
        // The attribute governs the next item; its body is the next
        // brace-balanced block (covers `mod tests { .. }` and `fn x() { .. }`).
        let Some(open) = code[pos..].find('{').map(|o| pos + o) else {
            continue;
        };
        let mut depth = 0usize;
        let mut end = bytes.len();
        for (k, &b) in bytes.iter().enumerate().skip(open) {
            if b == b'{' {
                depth += 1;
            } else if b == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            }
        }
        regions.push((pos, end));
        from = end;
    }
    regions
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|p| p + from)
}

pub(crate) fn in_regions(regions: &[(usize, usize)], pos: usize) -> bool {
    regions.iter().any(|&(a, b)| pos >= a && pos < b)
}

fn line_of(code: &str, pos: usize) -> usize {
    code.as_bytes()[..pos]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

pub(crate) fn excerpt_line(original: &str, line: usize) -> String {
    original
        .lines()
        .nth(line - 1)
        .unwrap_or_default()
        .trim()
        .to_string()
}

/// True when `code[pos]` starts `token` at an identifier boundary. The
/// boundary test only applies when the token itself begins with an
/// identifier character (`.unwrap()` legitimately follows an identifier).
fn token_at(code: &str, pos: usize, token: &str) -> bool {
    if !code[pos..].starts_with(token) {
        return false;
    }
    let first = token.as_bytes()[0];
    if (first.is_ascii_alphanumeric() || first == b'_') && pos > 0 {
        let prev = code.as_bytes()[pos - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' {
            return false;
        }
    }
    true
}

/// Finds identifier-boundary occurrences of `token` in `code`.
fn token_positions(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_from(code, token, from) {
        if token_at(code, pos, token) {
            out.push(pos);
        }
        from = pos + 1;
    }
    out
}

/// Runs every applicable rule over one masked file: the line/mask rules
/// L1–L4 here, then the token-level rules L5–L8 from [`crate::conc_rules`].
pub fn check_file(masked: &Masked, original: &str, kind: FileKind) -> Vec<Violation> {
    let mut out = Vec::new();
    let regions = test_regions(&masked.code);

    l2_unseeded_rng(masked, original, &mut out);
    if kind == FileKind::Library {
        l1_no_panics(masked, original, &regions, &mut out);
        l3_float_eq(masked, original, &regions, &mut out);
        l4_panics_doc(masked, original, &regions, &mut out);
    }
    let ts = crate::lexer::lex(original);
    crate::conc_rules::check(&ts, original, &regions, kind, &mut out);

    out.sort_by_key(|v| (v.line, v.rule.id()));
    out
}

/// L1: `.unwrap()`, `.expect(`, `panic!` in non-test library code.
fn l1_no_panics(
    masked: &Masked,
    original: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    const BANNED: [(&str, &str); 3] = [
        (".unwrap()", "use a typed error or document the invariant"),
        (".expect(", "use a typed error or document the invariant"),
        (
            "panic!",
            "return an error instead of panicking in library code",
        ),
    ];
    for (needle, hint) in BANNED {
        for pos in token_positions(&masked.code, needle) {
            if in_regions(regions, pos) {
                continue;
            }
            let line = line_of(&masked.code, pos);
            out.push(Violation {
                rule: Rule::L1,
                line,
                message: format!("`{}` in library code; {hint}", needle.trim_matches('.')),
                excerpt: excerpt_line(original, line),
            });
        }
    }
}

/// L2: unseeded RNG constructors anywhere, test code included.
fn l2_unseeded_rng(masked: &Masked, original: &str, out: &mut Vec<Violation>) {
    const BANNED: [&str; 3] = ["thread_rng", "from_entropy", "rand::random"];
    for needle in BANNED {
        for pos in token_positions(&masked.code, needle) {
            let line = line_of(&masked.code, pos);
            out.push(Violation {
                rule: Rule::L2,
                line,
                message: format!(
                    "`{needle}` draws entropy; every generator must be seeded \
                     (determinism is load-bearing for the reproduction)"
                ),
                excerpt: excerpt_line(original, line),
            });
        }
    }
}

/// L3: `==`/`!=` where one operand is a float literal (or an expression
/// ending in `as f64`), outside tests. Lexical by design: the 100%-precise
/// version of this check is `clippy::float_cmp`, which the workspace also
/// enables; this rule catches the idiom clippy misses in macro output.
fn l3_float_eq(
    masked: &Masked,
    original: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let code = &masked.code;
    let bytes = code.as_bytes();
    for op in ["==", "!="] {
        for pos in token_positions_raw(code, op) {
            if in_regions(regions, pos) {
                continue;
            }
            // `!=` positions also match the tail of `!==`? No such token in
            // Rust; but `<=`/`>=`/`=>`/`=` must not be confused with `==`:
            // check the byte before `==` is not `=`, `<`, `>`, `!`.
            if op == "==" {
                if pos > 0 && matches!(bytes[pos - 1], b'=' | b'<' | b'>' | b'!') {
                    continue;
                }
                if bytes.get(pos + 2) == Some(&b'=') {
                    continue;
                }
            }
            let lhs = left_operand(code, pos);
            let rhs = right_operand(code, pos + op.len());
            if is_floatish(lhs) || is_floatish(rhs) {
                let line = line_of(code, pos);
                out.push(Violation {
                    rule: Rule::L3,
                    line,
                    message: format!(
                        "float compared with `{op}`; use an epsilon or total_cmp \
                         (lhs `{}`, rhs `{}`)",
                        lhs.trim(),
                        rhs.trim()
                    ),
                    excerpt: excerpt_line(original, line),
                });
            }
        }
    }
}

/// Occurrences of a non-identifier token (no boundary check applies).
fn token_positions_raw(code: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_from(code, token, from) {
        out.push(pos);
        from = pos + token.len();
    }
    out
}

/// The expression text immediately left of an operator, scanned to the
/// nearest low-precedence boundary.
fn left_operand(code: &str, op_pos: usize) -> &str {
    let bytes = code.as_bytes();
    let mut i = op_pos;
    let mut depth = 0i32;
    while i > 0 {
        let b = bytes[i - 1];
        match b {
            b')' | b']' => depth += 1,
            b'(' | b'[' | b'{' | b',' | b';' if depth == 0 => break,
            b'(' | b'[' => depth -= 1,
            b'&' | b'|' | b'=' | b'<' | b'>' if depth == 0 => break,
            b'\n' if depth == 0 => break,
            _ => {}
        }
        i -= 1;
    }
    code[i..op_pos].trim()
}

/// The expression text immediately right of an operator.
fn right_operand(code: &str, after_op: usize) -> &str {
    let bytes = code.as_bytes();
    let mut i = after_op;
    let mut depth = 0i32;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' | b'}' | b',' | b';' if depth == 0 => break,
            b')' | b']' => depth -= 1,
            b'&' | b'|' | b'<' | b'>' if depth == 0 => break,
            b'\n' if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    code[after_op..i].trim()
}

/// True when the operand text clearly denotes an f64: a float literal
/// (`0.5`, `1e-9`, `2f64`) or a trailing `as f64` cast.
fn is_floatish(expr: &str) -> bool {
    let expr = expr.trim();
    if expr.ends_with("as f64") || expr.ends_with("as f32") {
        return true;
    }
    has_float_literal(expr)
}

fn has_float_literal(expr: &str) -> bool {
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            // Not part of an identifier like `x0`.
            if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
                i += 1;
                continue;
            }
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
            // `12.`, `12.5`
            if i < bytes.len() && bytes[i] == b'.' {
                if i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    // range `0..n`
                    i += 2;
                    continue;
                }
                return true;
            }
            // `1e-9`, `2f64`
            let rest = &expr[i..];
            if rest.starts_with('e') || rest.starts_with("f64") || rest.starts_with("f32") {
                let after_e = rest.strip_prefix('e').unwrap_or("");
                if rest.starts_with('f')
                    || after_e.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '+')
                {
                    return true;
                }
            }
            let _ = start;
        } else {
            i += 1;
        }
    }
    false
}

/// L4: a `pub fn` whose body contains `assert!`/`assert_eq!`/`assert_ne!`/
/// `panic!` must have a doc comment with a `# Panics` section.
fn l4_panics_doc(
    masked: &Masked,
    original: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let code = &masked.code;
    let bytes = code.as_bytes();
    for fn_pos in token_positions(code, "fn ") {
        let Some(pos) = pub_fn_start(code, fn_pos) else {
            continue;
        };
        if in_regions(regions, pos) {
            continue;
        }
        // Body: first `{` after the signature, brace-matched.
        let Some(open) = find_from(code, "{", fn_pos) else {
            continue;
        };
        let mut depth = 0usize;
        let mut end = bytes.len();
        for (k, &b) in bytes.iter().enumerate().skip(open) {
            if b == b'{' {
                depth += 1;
            } else if b == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            }
        }
        let body = &code[open..end];
        let panics = ["assert!", "assert_eq!", "assert_ne!", "panic!"]
            .iter()
            .any(|t| body_has_token(body, t));
        if !panics {
            continue;
        }
        let line = line_of(code, pos);
        if doc_block_has_panics(&masked.with_comments, line) {
            continue;
        }
        let name = code[fn_pos + "fn ".len()..]
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .next()
            .unwrap_or("?")
            .to_string();
        out.push(Violation {
            rule: Rule::L4,
            line,
            message: format!(
                "`pub fn {name}` can panic (assert/panic in body) but its doc \
                 comment has no `# Panics` section"
            ),
            excerpt: excerpt_line(original, line),
        });
    }
}

/// For an `fn ` keyword at `fn_pos`, returns the start of its `pub`
/// visibility token if the fn is exactly `pub` (not `pub(crate)`), walking
/// back over the `const`/`async`/`unsafe` modifiers.
fn pub_fn_start(code: &str, fn_pos: usize) -> Option<usize> {
    let mut end = fn_pos;
    loop {
        let before = code[..end].trim_end();
        let word_start = before
            .rfind(|c: char| !c.is_alphanumeric() && c != '_')
            .map_or(0, |p| p + 1);
        match &before[word_start..] {
            "const" | "async" | "unsafe" => end = word_start,
            "pub" => return Some(word_start),
            _ => return None,
        }
    }
}

fn body_has_token(body: &str, token: &str) -> bool {
    token_positions(body, token)
        .iter()
        .any(|&p| !body[..p].ends_with("debug_"))
}

/// Walks upward from the line above `fn_line`, across attributes, collecting
/// the contiguous `///` block; true when it contains `# Panics`.
fn doc_block_has_panics(with_comments: &str, fn_line: usize) -> bool {
    let lines: Vec<&str> = with_comments.lines().collect();
    let mut i = fn_line.saturating_sub(1); // index of the fn line
    while i > 0 {
        let prev = lines[i - 1].trim_start();
        if prev.starts_with("#[") || prev.starts_with("#!") {
            i -= 1;
        } else {
            break;
        }
    }
    let mut saw_panics = false;
    while i > 0 {
        let prev = lines[i - 1].trim_start();
        if prev.starts_with("///") {
            if prev.contains("# Panics") {
                saw_panics = true;
            }
            i -= 1;
        } else if prev.starts_with("#[") {
            // Attributes interleaved with docs (e.g. `#[must_use]`).
            i -= 1;
        } else {
            break;
        }
    }
    saw_panics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::mask;

    fn check(src: &str, kind: FileKind) -> Vec<Violation> {
        check_file(&mask(src), src, kind)
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule.id()).collect()
    }

    #[test]
    fn l1_fires_on_unwrap_expect_panic() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   pub fn g(x: Option<u32>) -> u32 { x.expect(\"oops\") }\n\
                   pub fn h() { panic!(\"boom\"); }\n";
        let v = check(src, FileKind::Library);
        // `h` both panics in library code (L1) and lacks a `# Panics`
        // section (L4).
        assert_eq!(rules_of(&v), ["L1", "L1", "L1", "L4"]);
    }

    #[test]
    fn l1_ignores_tests_and_testlike_files() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); }\n}\n";
        assert!(check(src, FileKind::Library).is_empty());
        let bench = "fn main() { None::<u32>.unwrap(); }";
        assert!(check(bench, FileKind::TestLike).is_empty());
    }

    #[test]
    fn l1_ignores_strings_comments_and_debug_assert() {
        let src = "// panic! here is prose\npub fn f() { let _ = \"don't panic!\"; }\n\
                   pub fn g() { debug_assert!(true); }\n";
        let v = check(src, FileKind::Library);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l2_fires_everywhere_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let mut r = rand::thread_rng(); }\n}\n";
        let v = check(src, FileKind::Library);
        assert_eq!(rules_of(&v), ["L2"]);
        let bench = "fn main() { let r = StdRng::from_entropy(); let x: f64 = rand::random(); }";
        let v = check(bench, FileKind::TestLike);
        assert_eq!(rules_of(&v), ["L2", "L2"]);
    }

    #[test]
    fn l3_fires_on_float_literal_comparison() {
        let src = "pub fn f(x: f64) -> bool { x == 0.5 }\n\
                   pub fn g(x: f64) -> bool { 1.0 != x }\n\
                   pub fn h(n: usize) -> bool { n as f64 == total() }\n";
        let v = check(src, FileKind::Library);
        assert_eq!(rules_of(&v), ["L3", "L3", "L3"]);
    }

    #[test]
    fn l3_ignores_integers_ranges_and_tests() {
        let src = "pub fn f(x: usize) -> bool { x == 10 }\n\
                   pub fn g(x: usize) -> bool { (0..5).contains(&x) && x != 3 }\n\
                   pub fn ver(s: &str) -> bool { s == \"1.0\" }\n\
                   #[cfg(test)]\nmod tests { fn t(x: f64) -> bool { x == 0.5 } }\n";
        let v = check(src, FileKind::Library);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l3_not_confused_by_other_operators() {
        let src = "pub fn f(x: f64) -> bool { x <= 0.5 && x >= 0.1 }\n\
                   pub fn g(x: f64) -> f64 { let y = 0.5; y }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn l4_requires_panics_doc() {
        let bad = "/// Does things.\npub fn f(x: usize) { assert!(x > 0); }\n";
        let v = check(bad, FileKind::Library);
        assert_eq!(rules_of(&v), ["L4"]);

        let good = "/// Does things.\n///\n/// # Panics\n/// Panics when x is 0.\n\
                    pub fn f(x: usize) { assert!(x > 0); }\n";
        assert!(check(good, FileKind::Library).is_empty());
    }

    #[test]
    fn l4_skips_private_fns_debug_asserts_and_tests() {
        let src = "fn private(x: usize) { assert!(x > 0); }\n\
                   pub fn soft(x: usize) { debug_assert!(x > 0); }\n\
                   #[cfg(test)]\nmod tests { pub fn t() { assert!(true); } }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn l4_sees_docs_across_attributes() {
        let src = "/// Docs.\n///\n/// # Panics\n/// On bad input.\n#[must_use]\n\
                   pub fn f(x: usize) -> usize { assert!(x > 0); x }\n";
        assert!(check(src, FileKind::Library).is_empty());
    }

    #[test]
    fn violations_carry_lines_and_excerpts() {
        let src = "fn a() {}\n\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = check(src, FileKind::Library);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert!(v[0].excerpt.contains("pub fn f"));
    }

    #[test]
    fn every_rule_has_explain_text_and_round_trips_by_id() {
        for rule in Rule::all() {
            let text = rule.explain();
            assert!(
                text.len() > 80,
                "{} explain text too thin: {text:?}",
                rule.id()
            );
            assert!(
                !rule.describe().is_empty(),
                "{} has no one-line description",
                rule.id()
            );
            assert_eq!(Rule::from_id(rule.id()), Some(rule), "{}", rule.id());
            // Every rule except L6 documents the allowlist escape hatch; L6
            // deliberately has none (write the comment instead).
            if rule == Rule::L6 {
                assert!(!text.contains("[[allow]]"), "L6 must not offer an escape");
            } else {
                assert!(
                    text.contains("[[allow]]"),
                    "{} explain must show the exception format",
                    rule.id()
                );
            }
        }
        assert_eq!(Rule::from_id("L15"), None);
        assert_eq!(Rule::from_id(""), None);
    }
}
