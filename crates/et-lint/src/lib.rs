//! `et-lint`: the workspace's repo-specific static-analysis engine.
//!
//! The reproduction's claims — convergence of (FP, Stochastic Best) per
//! Proposition 1, g1 violation measures, Beta-belief updates — are floating-
//! point and RNG-sensitive: a silent NaN, an unseeded RNG, or a stray
//! `unwrap()` corrupts a figure rather than crashing a test. This crate
//! walks every workspace `.rs` source and enforces fourteen rules the
//! compiler cannot express, in four tiers:
//!
//! - **L1–L4** (line/mask scans, [`rules`]) — no `unwrap()`/`expect()`/
//!   `panic!` in library code; no unseeded RNG anywhere; no f64 `==`/`!=`
//!   outside tests; `# Panics` docs on panicking `pub fn`s.
//! - **L5–L8** (token scans, [`conc_rules`]) — no guard held across a
//!   blocking call; atomic `Ordering`s justified; no truncating `as`
//!   casts; no `HashMap`/`HashSet` iteration-order leaks.
//! - **L9–L11** (interprocedural, [`graph_rules`]) — over the workspace
//!   call graph ([`parser`] + [`callgraph`]): no panic-capable op
//!   reachable from public entry points, no lock-order cycles, no
//!   nondeterminism source reachable from session entry points.
//! - **L12–L14** (hot-path cost model, [`cost_rules`]) — no allocation,
//!   lock/blocking call, or I/O reachable from a declared `[[hot]]` root;
//!   per-root cost aggregates feed the `--cost-report` emitter
//!   ([`json_out::render_hotpath`]) and the checked-in `HOTPATH.json`.
//!
//! Vetted exceptions and graph entry/source/hot declarations live in
//! `et-lint.toml` at the repo root (see [`allowlist`]). Exit codes:
//! 0 clean, 1 violations, 2 configuration/IO error.

pub mod allowlist;
pub mod callgraph;
pub mod conc_rules;
pub mod cost_rules;
pub mod graph_rules;
pub mod json_out;
pub mod lexer;
pub mod mask;
pub mod parser;
pub mod rules;

use std::path::{Path, PathBuf};

use allowlist::Allowlist;
use rules::{FileKind, Rule, Violation};

/// A violation bound to the file it occurred in.
#[derive(Debug)]
pub struct Finding {
    /// Repo-relative, '/'-separated path.
    pub path: String,
    /// The underlying rule violation.
    pub violation: Violation,
    /// For graph rules (L9–L14): the witness call chain, entry first.
    /// Empty for the per-file rules L1–L8.
    pub witness: Vec<String>,
}

/// Outcome of a full workspace run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by the allowlist.
    pub findings: Vec<Finding>,
    /// Violations suppressed by an allowlist entry.
    pub suppressed: usize,
    /// Indices of allowlist entries that never matched anything.
    pub stale_allows: Vec<usize>,
    /// For each stale entry (parallel to `stale_allows`): the closest
    /// scanned path by edit distance, when one is plausible — the file
    /// probably moved there.
    pub stale_suggestions: Vec<Option<String>>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Functions in the workspace call graph (library files only).
    pub graph_fns: usize,
    /// Call sites the graph declined to resolve (see `callgraph`).
    pub unresolved_calls: usize,
    /// Per-`[[hot]]`-root cost aggregates (see [`cost_rules`]); the
    /// substrate of `--cost-report` and the `--json` cost block.
    pub hot_roots: Vec<cost_rules::HotRootStat>,
}

impl Report {
    /// True when the run found nothing to complain about.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allows.is_empty()
    }
}

/// A fatal engine error (bad allowlist, unreadable tree).
#[derive(Debug)]
pub enum EngineError {
    /// The allowlist failed to parse.
    Allowlist(allowlist::AllowlistError),
    /// A filesystem operation failed.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Allowlist(e) => write!(f, "{e}"),
            EngineError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Runs the engine over the workspace rooted at `root`.
///
/// Scans `src/`, `tests/`, `examples/` at the root and `src/`, `tests/`,
/// `benches/`, `examples/` of every crate under `crates/`. The `vendor/` tree (offline
/// dependency shims that deliberately mirror foreign APIs) and `target/` are
/// never scanned.
pub fn run(root: &Path) -> Result<Report, EngineError> {
    let allow_text = match std::fs::read_to_string(root.join("et-lint.toml")) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            return Err(EngineError::Io {
                path: root.join("et-lint.toml"),
                source: e,
            })
        }
    };
    let allowlist = Allowlist::parse(&allow_text).map_err(EngineError::Allowlist)?;

    let mut files: Vec<(PathBuf, FileKind)> = Vec::new();
    for (dir, kind) in [
        ("src", FileKind::Library),
        ("tests", FileKind::TestLike),
        ("examples", FileKind::TestLike),
    ] {
        collect_rs(&root.join(dir), kind, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries = std::fs::read_dir(&crates_dir).map_err(|e| EngineError::Io {
            path: crates_dir.clone(),
            source: e,
        })?;
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            collect_rs(&crate_dir.join("src"), FileKind::Library, &mut files)?;
            collect_rs(&crate_dir.join("tests"), FileKind::TestLike, &mut files)?;
            collect_rs(&crate_dir.join("benches"), FileKind::TestLike, &mut files)?;
            collect_rs(&crate_dir.join("examples"), FileKind::TestLike, &mut files)?;
        }
    }

    // Per-file stage (read, mask, L1–L8, parse) is embarrassingly parallel;
    // results land in disjoint slots and merge in file order, so the output
    // is identical to a serial run — including which IO error wins.
    let mut slots: Vec<Result<Scanned, EngineError>> = Vec::new();
    slots.resize_with(files.len(), || {
        // Placeholder; every slot is overwritten by exactly one worker.
        Err(EngineError::Io {
            path: PathBuf::new(),
            source: std::io::Error::other("file slot never scanned"),
        })
    });
    let workers = worker_count(files.len());
    if workers <= 1 {
        for ((path, kind), slot) in files.iter().zip(slots.iter_mut()) {
            *slot = scan_one(root, path, *kind);
        }
    } else {
        let chunk = files.len().div_ceil(workers);
        std::thread::scope(|s| {
            for (fc, sc) in files.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                s.spawn(move || {
                    for ((path, kind), slot) in fc.iter().zip(sc.iter_mut()) {
                        *slot = scan_one(root, path, *kind);
                    }
                });
            }
        });
    }

    let mut report = Report::default();
    let mut used = vec![false; allowlist.entries.len()];
    let mut parsed: Vec<(String, parser::FileAst)> = Vec::new();
    let mut scanned_rels: Vec<String> = Vec::new();
    let mut record =
        |report: &mut Report, rel: &str, violation: Violation, witness: Vec<String>| {
            let matched = allowlist.matches(rel, &violation);
            if matched.is_empty() {
                report.findings.push(Finding {
                    path: rel.to_string(),
                    violation,
                    witness,
                });
            } else {
                for m in matched {
                    used[m] = true;
                }
                report.suppressed += 1;
            }
        };
    for slot in slots {
        let scanned = slot?;
        report.files_scanned += 1;
        for violation in scanned.violations {
            record(&mut report, &scanned.rel, violation, Vec::new());
        }
        if let Some(ast) = scanned.ast {
            parsed.push((scanned.rel.clone(), ast));
        }
        scanned_rels.push(scanned.rel);
    }

    // Interprocedural stage: link the workspace call graph from library
    // files and run L9–L11 over it, then the hot-path cost tier L12–L14.
    let graph = callgraph::CallGraph::link(&parsed);
    report.graph_fns = graph.nodes.len();
    report.unresolved_calls = graph.unresolved_count;
    for gf in graph_rules::check(&graph, &allowlist) {
        record(&mut report, &gf.path, gf.violation, gf.witness);
    }
    let (cost_findings, hot_stats) = cost_rules::check(&graph, &allowlist);
    for gf in cost_findings {
        record(&mut report, &gf.path, gf.violation, gf.witness);
    }
    report.hot_roots = hot_stats;

    report.stale_allows = used
        .iter()
        .enumerate()
        .filter(|&(_, u)| !u)
        .map(|(i, _)| i)
        .collect();
    report.stale_suggestions = report
        .stale_allows
        .iter()
        .map(|&i| {
            allowlist::suggest_path(&allowlist.entries[i].path, &scanned_rels).map(str::to_string)
        })
        .collect();
    Ok(report)
}

/// Output of the per-file stage for one source file.
struct Scanned {
    /// Repo-relative path.
    rel: String,
    /// L1–L8 violations.
    violations: Vec<Violation>,
    /// Parsed items, library files only (test-like trees stay out of the
    /// call graph).
    ast: Option<parser::FileAst>,
}

/// Reads and checks one file. Runs on a worker thread.
fn scan_one(root: &Path, path: &Path, kind: FileKind) -> Result<Scanned, EngineError> {
    let text = std::fs::read_to_string(path).map_err(|e| EngineError::Io {
        path: path.to_path_buf(),
        source: e,
    })?;
    let rel = rel_path(root, path);
    let masked = mask::mask(&text);
    let violations = rules::check_file(&masked, &text, kind);
    let ast = (kind == FileKind::Library).then(|| parser::parse(&text));
    Ok(Scanned {
        rel,
        violations,
        ast,
    })
}

/// Worker-thread count: `ET_LINT_THREADS` when set, else the machine's
/// parallelism. Small trees (≤ 8 files) stay serial — thread spin-up costs
/// more than it saves, and every unit-test tree stays on one stack.
fn worker_count(files: usize) -> usize {
    if files <= 8 {
        return 1;
    }
    let configured = std::env::var("ET_LINT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0);
    let n = configured.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    n.min(files)
}

/// Renders the report for terminal consumption; returns the exit code.
pub fn render(report: &Report, allowlist_path: &Path, out: &mut impl std::io::Write) -> i32 {
    for f in &report.findings {
        let _ = writeln!(
            out,
            "{}:{}: [{}] {}\n    {}",
            f.path,
            f.violation.line,
            f.violation.rule.id(),
            f.violation.message,
            f.violation.excerpt
        );
        for (i, hop) in f.witness.iter().enumerate() {
            let _ = writeln!(out, "    {}{hop}", if i == 0 { "via " } else { "  → " });
        }
    }
    for (k, &i) in report.stale_allows.iter().enumerate() {
        let hint = match report.stale_suggestions.get(k) {
            Some(Some(s)) => format!("; did you mean '{s}'?"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "{}: [stale-allow] entry #{} never matched any violation; remove it{hint}",
            allowlist_path.display(),
            i + 1
        );
    }
    let _ = writeln!(
        out,
        "et-lint: {} file(s) scanned, {} violation(s), {} suppressed, {} stale allow(s), \
         {} graph fn(s), {} unresolved call(s)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed,
        report.stale_allows.len(),
        report.graph_fns,
        report.unresolved_calls
    );
    if report.is_clean() {
        0
    } else {
        1
    }
}

/// Prints the rule catalogue.
pub fn list_rules(out: &mut impl std::io::Write) {
    for rule in Rule::all() {
        let _ = writeln!(out, "{}  {}", rule.id(), rule.describe());
    }
}

fn collect_rs(
    dir: &Path,
    kind: FileKind,
    out: &mut Vec<(PathBuf, FileKind)>,
) -> Result<(), EngineError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| EngineError::Io {
        path: dir.to_path_buf(),
        source: e,
    })?;
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, kind, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((path, kind));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tree(files: &[(&str, &str)]) -> PathBuf {
        let id = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or_default();
        let root = std::env::temp_dir().join(format!("et-lint-test-{id}-{:p}", &files));
        for (rel, content) in files {
            let path = root.join(rel);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).expect("mkdir");
            }
            std::fs::write(&path, content).expect("write");
        }
        root
    }

    #[test]
    fn clean_tree_reports_clean() {
        let root = write_tree(&[(
            "crates/a/src/lib.rs",
            "//! Docs.\npub fn ok(x: usize) -> usize { x + 1 }\n",
        )]);
        let report = run(&root).expect("runs");
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.files_scanned, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn seeded_violations_of_each_rule_are_caught() {
        let root = write_tree(&[
            (
                "crates/a/src/lib.rs",
                "pub fn l1(x: Option<u32>) -> u32 { x.unwrap() }\n\
                 pub fn l3(x: f64) -> bool { x == 0.5 }\n\
                 /// No panics doc.\n\
                 pub fn l4(x: usize) { assert!(x > 0); }\n",
            ),
            (
                "crates/a/tests/t.rs",
                "fn l2() { let mut rng = rand::thread_rng(); }\n",
            ),
        ]);
        let report = run(&root).expect("runs");
        let mut fired: Vec<&str> = report
            .findings
            .iter()
            .map(|f| f.violation.rule.id())
            .collect();
        fired.sort_unstable();
        fired.dedup();
        assert_eq!(fired, ["L1", "L2", "L3", "L4"], "{report:?}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn allowlist_suppresses_and_stale_entries_flagged() {
        let root = write_tree(&[
            (
                "crates/a/src/lib.rs",
                "pub fn l1(x: Option<u32>) -> u32 { x.unwrap() }\n",
            ),
            (
                "et-lint.toml",
                "[[allow]]\nrule = \"L1\"\npath = \"crates/a/src/lib.rs\"\n\
                 reason = \"seeded for the suppression test\"\n\
                 [[allow]]\nrule = \"L2\"\npath = \"never/matches.rs\"\nreason = \"stale\"\n",
            ),
        ]);
        let report = run(&root).expect("runs");
        assert!(report.findings.is_empty(), "{report:?}");
        assert_eq!(report.suppressed, 1);
        assert_eq!(report.stale_allows, vec![1]);
        assert!(!report.is_clean(), "stale allow keeps the run dirty");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn crate_examples_are_scanned_as_test_like() {
        let root = write_tree(&[(
            "crates/a/examples/demo.rs",
            // unwrap is fine in examples (TestLike), an unseeded RNG is not.
            "fn main() { let _ = rand::thread_rng(); Some(1u32).unwrap(); }\n",
        )]);
        let report = run(&root).expect("runs");
        let fired: Vec<&str> = report
            .findings
            .iter()
            .map(|f| f.violation.rule.id())
            .collect();
        assert_eq!(fired, ["L2"], "{report:?}");
        assert_eq!(report.files_scanned, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn vendor_and_unknown_dirs_not_scanned() {
        let root = write_tree(&[
            ("vendor/rand/src/lib.rs", "pub fn thread_rng() {}\n"),
            ("crates/a/src/lib.rs", "//! Fine.\n"),
        ]);
        let report = run(&root).expect("runs");
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.files_scanned, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn render_exit_codes() {
        let clean = Report::default();
        let mut sink = Vec::new();
        assert_eq!(render(&clean, Path::new("et-lint.toml"), &mut sink), 0);
        let dirty = Report {
            findings: vec![Finding {
                path: "x.rs".into(),
                violation: rules::Violation {
                    rule: rules::Rule::L1,
                    line: 1,
                    message: "m".into(),
                    excerpt: "e".into(),
                },
                witness: Vec::new(),
            }],
            ..Default::default()
        };
        assert_eq!(render(&dirty, Path::new("et-lint.toml"), &mut sink), 1);
        let out = String::from_utf8(sink).expect("utf8");
        assert!(out.contains("[L1]"), "{out}");
    }
}
