//! The token-level concurrency & determinism rules L5–L8.
//!
//! Unlike L1–L4 (line/mask scans), these rules walk the [`crate::lexer`]
//! token stream so they can see expression structure: what a `let` binds,
//! where a statement ends, which block a guard lives in. All four target
//! hazards that corrupt the reproduction's figures silently instead of
//! crashing a test:
//!
//! - **L5** — a `MutexGuard` held across a blocking call serializes the
//!   worker pool (or deadlocks it) without failing any functional test.
//! - **L6** — an atomic `Ordering` argument without a trailing `// ord:`
//!   justification is unreviewable: Relaxed-vs-AcqRel is exactly the kind
//!   of choice that reads fine and loses counts under load.
//! - **L7** — a truncating `as` cast wraps silently; at serve-scale the
//!   wrapped counter or row id feeds a figure, not a panic.
//! - **L8** — `HashMap`/`HashSet` iteration order is randomized per
//!   process; letting it reach a return value, a `Vec`, or the wire makes
//!   responses and replay files non-reproducible.

use crate::lexer::{Delim, TokenKind, TokenStream};
use crate::rules::{excerpt_line, in_regions, FileKind, Rule, Violation};

/// Runs L5–L8 over one lexed file. `regions` are the `#[cfg(test)]` byte
/// ranges computed on the masked view (offsets are valid for the original
/// because masking preserves length).
pub fn check(
    ts: &TokenStream<'_>,
    original: &str,
    regions: &[(usize, usize)],
    kind: FileKind,
    out: &mut Vec<Violation>,
) {
    if kind != FileKind::Library {
        return;
    }
    l5_guard_across_blocking(ts, original, regions, out);
    l6_ordering_justified(ts, original, regions, out);
    l7_truncating_casts(ts, original, regions, out);
    l8_hash_iteration_order(ts, original, regions, out);
}

/// Calls that block the current thread indefinitely (or for a configured
/// timeout) — holding a lock across any of these stalls every other
/// thread contending for the same shard.
const BLOCKING_METHODS: [&str; 5] = ["recv", "recv_timeout", "accept", "read_line", "join"];

/// L5: no `lock()` guard live across a blocking call.
///
/// Detection: each `.lock()` call either feeds a `let` binding (guard
/// lives from the statement end to the enclosing block's `}` or an
/// explicit `drop(binding)`) or is a temporary (guard lives to the end of
/// its own statement). Any blocking call inside the live range fires.
fn l5_guard_across_blocking(
    ts: &TokenStream<'_>,
    original: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    for i in 0..ts.tokens.len() {
        if !(ts.is_code(i) && ts.text(i) == "lock" && ts.tokens[i].kind == TokenKind::Ident) {
            continue;
        }
        let prev_dot = ts.prev_code(i).is_some_and(|p| ts.text(p) == ".");
        let next_paren = ts
            .next_code(i)
            .is_some_and(|n| ts.tokens[n].kind == TokenKind::Open(Delim::Paren));
        if !prev_dot || !next_paren {
            continue;
        }
        if in_regions(regions, ts.tokens[i].start) {
            continue;
        }
        let stmt_start = ts.statement_start(i);
        let stmt_end = ts.statement_end(i);
        // The guard outlives its statement only when a `let` binds the
        // guard itself: the value of `.lock()` possibly piped through
        // guard-preserving adapters (`unwrap`, `match` on the poison
        // result). A chain that keeps calling into the guard
        // (`.lock().recv_timeout(…)`) consumes it within the statement.
        let is_let = ts.text(stmt_start) == "let";
        let guard_bound = is_let && !chain_continues_past_guard(ts, i);
        let binding = guard_bound.then(|| {
            let mut j = stmt_start + 1;
            while j < ts.tokens.len() && (!ts.is_code(j) || ts.text(j) == "mut") {
                j += 1;
            }
            (ts.tokens[j].kind == TokenKind::Ident).then(|| ts.text(j))
        });
        let (scope_start, mut scope_end) = match binding {
            Some(Some(_)) => (stmt_end, ts.enclosing_block_close(stmt_start)),
            // Destructuring `let (a, b) = …`, temporaries, non-let
            // statements: the guard dies at the end of its own statement.
            _ => (i, stmt_end),
        };
        // An explicit `drop(binding)` ends the guard early.
        if let Some(Some(name)) = binding {
            for j in scope_start..scope_end {
                if ts.is_code(j) && ts.text(j) == "drop" && ts.matches_seq(j + 1, &["(", name]) {
                    scope_end = j;
                    break;
                }
            }
        }
        for j in scope_start..scope_end.min(ts.tokens.len()) {
            if !ts.is_code(j) || ts.tokens[j].kind != TokenKind::Ident {
                continue;
            }
            let name = ts.text(j);
            let is_method = BLOCKING_METHODS.contains(&name)
                && ts.prev_code(j).is_some_and(|p| ts.text(p) == ".")
                && ts
                    .next_code(j)
                    .is_some_and(|n| ts.tokens[n].kind == TokenKind::Open(Delim::Paren));
            let is_connect = name == "connect"
                && ts
                    .prev_code(j)
                    .and_then(|c1| ts.prev_code(c1).map(|c2| (c1, c2)))
                    .and_then(|(c1, c2)| ts.prev_code(c2).map(|t| (c1, c2, t)))
                    .is_some_and(|(c1, c2, t)| {
                        ts.text(c1) == ":" && ts.text(c2) == ":" && ts.text(t) == "TcpStream"
                    });
            if is_method || is_connect {
                let line = ts.tokens[j].line;
                out.push(Violation {
                    rule: Rule::L5,
                    line,
                    message: format!(
                        "mutex guard from `.lock()` (line {}) is still live across \
                         blocking `{name}`; drop the guard first or move the wait \
                         out of the critical section",
                        ts.tokens[i].line
                    ),
                    excerpt: excerpt_line(original, line),
                });
                break; // one finding per guard is enough
            }
        }
    }
}

/// Adapters that return the guard itself (or its poisoned twin).
const GUARD_PRESERVING: [&str; 5] = [
    "unwrap",
    "expect",
    "unwrap_or_else",
    "unwrap_or_default",
    "into_inner",
];

/// For a `lock` ident at `lock_idx`, true when the method chain keeps
/// going after the guard-returning prefix — meaning the guard is a
/// temporary consumed inside its own statement, not the bound value.
fn chain_continues_past_guard(ts: &TokenStream<'_>, lock_idx: usize) -> bool {
    // `lock ( … )` — find the call's closing paren.
    let Some(open) = ts.next_code(lock_idx) else {
        return false;
    };
    let mut at = match call_close(ts, open) {
        Some(c) => c,
        None => return false,
    };
    loop {
        let Some(dot) = ts.next_code(at).filter(|&d| ts.text(d) == ".") else {
            return false; // chain ends here: `;`, `{`, `}` — guard is the value
        };
        let Some(m) = ts.next_code(dot) else {
            return false;
        };
        if !GUARD_PRESERVING.contains(&ts.text(m)) {
            return true;
        }
        let Some(o) = ts
            .next_code(m)
            .filter(|&o| ts.tokens[o].kind == TokenKind::Open(Delim::Paren))
        else {
            return true; // `.await`-style or field access: treat as consumed
        };
        at = match call_close(ts, o) {
            Some(c) => c,
            None => return false,
        };
    }
}

/// The `Close(Paren)` matching the `Open(Paren)` at `open`.
fn call_close(ts: &TokenStream<'_>, open: usize) -> Option<usize> {
    let depth = ts.tokens[open].depth;
    (open + 1..ts.tokens.len()).find(|&j| {
        ts.tokens[j].depth == depth && ts.tokens[j].kind == TokenKind::Close(Delim::Paren)
    })
}

/// The five memory-ordering modes of `std::sync::atomic::Ordering`.
const ORDERING_MODES: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// L6: every line using `Ordering::<mode>` must carry a non-empty
/// `// ord: <why>` comment — trailing on the same line, or standalone on
/// the line immediately above (where rustfmt keeps it for `{`-ending
/// statements). An `// ord:` comment justifying no ordering use is stale
/// and also fires.
fn l6_ordering_justified(
    ts: &TokenStream<'_>,
    original: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    use std::collections::BTreeMap;
    // line -> (has ordering use, ord comment state)
    #[derive(Default)]
    struct LineInfo {
        uses: bool,
        ord_comment: Option<bool>, // Some(justified?)
        in_test: bool,
    }
    let mut lines: BTreeMap<usize, LineInfo> = BTreeMap::new();
    for i in 0..ts.tokens.len() {
        let t = &ts.tokens[i];
        if t.kind == TokenKind::Ident
            && ts.text(i) == "Ordering"
            && ts.matches_seq(i + 1, &[":", ":"])
            && ts
                .tokens
                .get(i + 3)
                .is_some_and(|_| ORDERING_MODES.contains(&ts.text(i + 3)))
        {
            let e = lines.entry(t.line).or_default();
            e.uses = true;
            e.in_test |= in_regions(regions, t.start);
        }
        if t.kind == TokenKind::LineComment {
            let body = ts.text(i).trim_start_matches('/').trim_start();
            if let Some(rest) = body.strip_prefix("ord:") {
                let e = lines.entry(t.line).or_default();
                e.ord_comment = Some(!rest.trim().is_empty());
                e.in_test |= in_regions(regions, t.start);
            }
        }
    }
    // Pass 1: resolve each ordering use to its justification — trailing on
    // the same line, or a standalone `// ord:` line directly above.
    let mut consumed: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for (&line, info) in &lines {
        if !info.uses || info.in_test {
            continue;
        }
        let comment = match info.ord_comment {
            Some(j) => Some((line, j)),
            None => lines
                .get(&line.saturating_sub(1))
                .filter(|above| !above.uses)
                .and_then(|above| above.ord_comment)
                .map(|j| (line - 1, j)),
        };
        match comment {
            None => out.push(Violation {
                rule: Rule::L6,
                line,
                message: "atomic `Ordering` argument has no `// ord:` justification on \
                          this line or the line above (state why this ordering is \
                          strong enough)"
                    .to_string(),
                excerpt: excerpt_line(original, line),
            }),
            Some((cline, justified)) => {
                consumed.insert(cline);
                if !justified {
                    out.push(Violation {
                        rule: Rule::L6,
                        line,
                        message: "`// ord:` justification is empty; state why this \
                                  ordering is strong enough"
                            .to_string(),
                        excerpt: excerpt_line(original, line),
                    });
                }
            }
        }
    }
    // Pass 2: any `// ord:` comment that justified nothing is stale.
    for (&line, info) in &lines {
        if info.ord_comment.is_some() && !info.uses && !info.in_test && !consumed.contains(&line) {
            out.push(Violation {
                rule: Rule::L6,
                line,
                message: "stale `// ord:` comment: no `Ordering::` use on this line \
                          or the line below"
                    .to_string(),
                excerpt: excerpt_line(original, line),
            });
        }
    }
}

/// Numeric type classification for L7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NumTy {
    /// f32/f64.
    float: bool,
    /// Signed integer (meaningless for floats).
    signed: bool,
    /// Width in value bits (mantissa bits for floats; usize/isize counted
    /// as 64 when a source, 32 when a target — the conservative direction
    /// each way).
    bits: u32,
}

fn num_ty(name: &str, as_source: bool) -> Option<NumTy> {
    let t = |float, signed, bits| {
        Some(NumTy {
            float,
            signed,
            bits,
        })
    };
    match name {
        "u8" => t(false, false, 8),
        "u16" => t(false, false, 16),
        "u32" => t(false, false, 32),
        "u64" => t(false, false, 64),
        "u128" => t(false, false, 128),
        "i8" => t(false, true, 8),
        "i16" => t(false, true, 16),
        "i32" => t(false, true, 32),
        "i64" => t(false, true, 64),
        "i128" => t(false, true, 128),
        "usize" => t(false, false, if as_source { 64 } else { 32 }),
        "isize" => t(false, true, if as_source { 64 } else { 32 }),
        "f32" => t(true, true, 24),
        "f64" => t(true, true, 53),
        _ => None,
    }
}

/// True when converting `s` to `t` can lose information.
fn lossy(s: NumTy, t: NumTy) -> bool {
    match (s.float, t.float) {
        (true, true) => t.bits < s.bits,
        (true, false) => true, // float -> int always truncates
        // int -> f64 is accepted by convention (metrics divide counts all
        // over this workspace); only the f32 mantissa is narrow enough to
        // flag.
        (false, true) => t.bits < 53 && s.bits > t.bits,
        (false, false) => {
            if s.signed == t.signed {
                t.bits < s.bits
            } else if s.signed {
                true // signed -> unsigned loses negatives
            } else {
                t.bits <= s.bits // unsigned -> signed needs one extra bit
            }
        }
    }
}

/// Targets flagged even when the source type cannot be inferred: with a
/// 64-bit-or-float source (the common case in this workspace), these all
/// truncate.
const NARROW_TARGETS: [&str; 7] = ["u8", "i8", "u16", "i16", "u32", "i32", "f32"];

/// Methods whose return type is known without inference.
const USIZE_METHODS: [&str; 3] = ["len", "count", "capacity"];
const FLOAT_METHODS: [&str; 5] = ["round", "floor", "ceil", "trunc", "sqrt"];

/// L7: no truncating `as` cast between numeric types in non-test library
/// code. Source inference is lexical: literal suffixes, chained casts,
/// known methods (`.len()`, `.round()`), and parenthesized operands
/// containing float arithmetic. Unknown sources fire only on
/// [`NARROW_TARGETS`].
fn l7_truncating_casts(
    ts: &TokenStream<'_>,
    original: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    for i in 0..ts.tokens.len() {
        if !(ts.is_code(i) && ts.tokens[i].kind == TokenKind::Ident && ts.text(i) == "as") {
            continue;
        }
        let Some(tgt_idx) = ts.next_code(i) else {
            continue;
        };
        let Some(target) = num_ty(ts.text(tgt_idx), false) else {
            continue;
        };
        if in_regions(regions, ts.tokens[i].start) {
            continue;
        }
        let target_name = ts.text(tgt_idx);
        let source = infer_source(ts, i);
        let fires = match source {
            SourceHint::Known(name, s) => {
                name != target_name && lossy(s, num_ty(target_name, false).unwrap_or(target))
            }
            SourceHint::IntLiteral(value) => !literal_fits(value, target_name),
            SourceHint::Unknown => NARROW_TARGETS.contains(&target_name),
        };
        if fires {
            let line = ts.tokens[i].line;
            let src_desc = match source {
                SourceHint::Known(name, _) => format!("`{name}`"),
                SourceHint::IntLiteral(v) => format!("literal `{v}`"),
                SourceHint::Unknown => "inferred-wide".to_string(),
            };
            out.push(Violation {
                rule: Rule::L7,
                line,
                message: format!(
                    "truncating cast {src_desc} as `{target_name}`; use \
                     `try_from`/`From` or add a vetted et-lint.toml entry"
                ),
                excerpt: excerpt_line(original, line),
            });
        }
    }
}

/// What L7 could learn about a cast's source operand.
enum SourceHint {
    /// A named numeric type (suffix, chained cast, known method).
    Known(&'static str, NumTy),
    /// An unsuffixed integer literal with this value.
    IntLiteral(u128),
    /// No lexical evidence.
    Unknown,
}

/// Interns a type-name string so [`SourceHint::Known`] can be `'static`.
fn intern_ty(name: &str) -> Option<&'static str> {
    const NAMES: [&str; 14] = [
        "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "usize", "isize",
        "f32", "f64",
    ];
    NAMES.into_iter().find(|n| *n == name)
}

fn infer_source(ts: &TokenStream<'_>, as_idx: usize) -> SourceHint {
    let Some(prev) = ts.prev_code(as_idx) else {
        return SourceHint::Unknown;
    };
    let ptext = ts.text(prev);
    match ts.tokens[prev].kind {
        // Literal with suffix: `7u64 as usize`, `1.5f32 as f64`.
        TokenKind::Int => {
            if let Some(name) = literal_suffix(ptext) {
                if let Some(t) = num_ty(name, true) {
                    return SourceHint::Known(name, t);
                }
            }
            if let Some(v) = parse_int_literal(ptext) {
                return SourceHint::IntLiteral(v);
            }
            SourceHint::Unknown
        }
        TokenKind::Float => {
            let name = literal_suffix(ptext).unwrap_or("f64");
            num_ty(name, true).map_or(SourceHint::Unknown, |t| SourceHint::Known(name, t))
        }
        TokenKind::Ident => {
            // Chained cast: `x as u64 as usize`.
            if let (Some(name), Some(t)) = (intern_ty(ptext), num_ty(ptext, true)) {
                let before = ts.prev_code(prev);
                if before.is_some_and(|b| ts.text(b) == "as") {
                    return SourceHint::Known(name, t);
                }
            }
            SourceHint::Unknown
        }
        TokenKind::Close(Delim::Paren) => {
            // `.len() as u16`, `.round() as usize`: the call's method name
            // sits two tokens back (`name ( )`).
            if let Some(open) = ts.prev_code(prev) {
                if ts.tokens[open].kind == TokenKind::Open(Delim::Paren) {
                    if let Some(m) = ts.prev_code(open) {
                        let mname = ts.text(m);
                        let dotted = ts.prev_code(m).is_some_and(|d| ts.text(d) == ".");
                        if dotted && USIZE_METHODS.contains(&mname) {
                            return num_ty("usize", true)
                                .map_or(SourceHint::Unknown, |t| SourceHint::Known("usize", t));
                        }
                        if dotted && FLOAT_METHODS.contains(&mname) {
                            return num_ty("f64", true)
                                .map_or(SourceHint::Unknown, |t| SourceHint::Known("f64", t));
                        }
                    }
                }
            }
            // Parenthesized operand: float evidence anywhere inside makes
            // the whole expression float-typed (`(n as f64 * alpha) as
            // usize`).
            if let Some(open) = matching_open_paren(ts, prev) {
                for j in open..prev {
                    if !ts.is_code(j) {
                        continue;
                    }
                    let is_float_lit = ts.tokens[j].kind == TokenKind::Float;
                    let is_float_cast = ts.text(j) == "as"
                        && ts
                            .next_code(j)
                            .is_some_and(|n| matches!(ts.text(n), "f64" | "f32"));
                    if is_float_lit || is_float_cast {
                        return num_ty("f64", true)
                            .map_or(SourceHint::Unknown, |t| SourceHint::Known("f64", t));
                    }
                }
            }
            SourceHint::Unknown
        }
        _ => SourceHint::Unknown,
    }
}

/// The `Close(Paren)` at `close` paired with its `Open(Paren)`, found via
/// the depth convention (both carry the same outer depth).
fn matching_open_paren(ts: &TokenStream<'_>, close: usize) -> Option<usize> {
    let depth = ts.tokens[close].depth;
    (0..close).rev().find(|&j| {
        ts.tokens[j].depth == depth && ts.tokens[j].kind == TokenKind::Open(Delim::Paren)
    })
}

/// Trailing numeric-type suffix of a literal token, if any.
fn literal_suffix(text: &str) -> Option<&'static str> {
    const NAMES: [&str; 14] = [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        "f64", "f32",
    ];
    NAMES.into_iter().find(|n| text.ends_with(n))
}

/// Value of an unsuffixed int literal (decimal or hex), for fit checks.
fn parse_int_literal(text: &str) -> Option<u128> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x") {
        u128::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = t.strip_prefix("0o") {
        u128::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = t.strip_prefix("0b") {
        u128::from_str_radix(bin, 2).ok()
    } else {
        t.parse().ok()
    }
}

/// True when a visible literal value fits the target type losslessly.
fn literal_fits(value: u128, target: &str) -> bool {
    match target {
        "u8" => value <= u128::from(u8::MAX),
        "i8" => value <= i8::MAX as u128,
        "u16" => value <= u128::from(u16::MAX),
        "i16" => value <= i16::MAX as u128,
        "u32" => value <= u128::from(u32::MAX),
        "i32" => value <= i32::MAX as u128,
        "f32" => value < (1 << 24),
        "f64" => value < (1 << 53),
        "u64" | "usize" => value <= u128::from(u64::MAX),
        "i64" | "isize" => value <= i64::MAX as u128,
        _ => true,
    }
}

/// Iterator-source methods on hash containers.
const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
];

/// Order-sensitive sinks: tokens in the same statement (or loop body)
/// that let iteration order escape.
const ORDER_SINKS: [&str; 6] = ["collect", "push", "push_str", "extend", "join", "write_all"];

/// Order-insensitive evidence: a statement containing one of these on the
/// chain is deterministic regardless of iteration order.
const ORDER_NEUTRALIZERS: [&str; 9] = [
    "sum", "count", "min", "max", "all", "any", "product", "BTreeMap", "BTreeSet",
];

/// L8: iteration over a `HashMap`/`HashSet` may not feed an
/// order-sensitive sink unless sorted (or rehomed into a `BTreeMap`).
///
/// Hash-typed names are collected lexically: `name: HashMap<…>`
/// annotations (struct fields, params, lets — outermost type only, seen
/// through `&`/`Arc`/`Mutex`/guard wrappers), `let name = <hash-expr>`,
/// and functions whose return type mentions the containers.
fn l8_hash_iteration_order(
    ts: &TokenStream<'_>,
    original: &str,
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    let marked = collect_hash_names(ts);
    if marked.is_empty() {
        return;
    }
    let mut flagged_lines: Vec<usize> = Vec::new();
    for i in 0..ts.tokens.len() {
        if !ts.is_code(i) || ts.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        if !marked.contains(&ts.text(i).to_string()) {
            continue;
        }
        if in_regions(regions, ts.tokens[i].start) {
            continue;
        }
        // Case 1: `name.iter()`-style chain.
        let chain = ts
            .next_code(i)
            .filter(|&d| ts.text(d) == ".")
            .and_then(|d| ts.next_code(d))
            .filter(|&m| HASH_ITER_METHODS.contains(&ts.text(m)))
            .filter(|&m| {
                ts.next_code(m)
                    .is_some_and(|p| ts.tokens[p].kind == TokenKind::Open(Delim::Paren))
            });
        if let Some(m) = chain {
            let start = ts.statement_start(i);
            let end = ts.statement_end(i);
            if statement_sinks_order(ts, start, end)
                && !sorted_later(ts, start, end)
                && !flagged_lines.contains(&ts.tokens[m].line)
            {
                let line = ts.tokens[m].line;
                flagged_lines.push(line);
                out.push(Violation {
                    rule: Rule::L8,
                    line,
                    message: format!(
                        "iteration over hash container `{}` feeds an order-sensitive \
                         sink; sort the result or use a BTreeMap/BTreeSet",
                        ts.text(i)
                    ),
                    excerpt: excerpt_line(original, line),
                });
            }
            continue;
        }
        // Case 2: `for pat in [&] name { body }`.
        let stmt = ts.statement_start(i);
        if ts.text(stmt) != "for" {
            continue;
        }
        // `i` must sit between `in` and the body `{`.
        let header_depth = ts.tokens[stmt].depth;
        let mut saw_in = false;
        let mut body_open = None;
        for j in stmt..ts.tokens.len() {
            if !ts.is_code(j) || ts.tokens[j].depth != header_depth {
                continue;
            }
            if ts.text(j) == "in" {
                saw_in = j < i;
            }
            if ts.tokens[j].kind == TokenKind::Open(Delim::Brace) {
                body_open = (j > i).then_some(j);
                break;
            }
        }
        let Some(open) = body_open else {
            continue;
        };
        if !saw_in {
            continue;
        }
        let body_end = ts.enclosing_block_close(open + 1);
        if statement_sinks_order(ts, open, body_end)
            && !sorted_later(ts, open, body_end)
            && !flagged_lines.contains(&ts.tokens[stmt].line)
        {
            let line = ts.tokens[stmt].line;
            flagged_lines.push(line);
            out.push(Violation {
                rule: Rule::L8,
                line,
                message: format!(
                    "`for` loop over hash container `{}` feeds an order-sensitive \
                     sink; sort first or use a BTreeMap/BTreeSet",
                    ts.text(i)
                ),
                excerpt: excerpt_line(original, line),
            });
        }
    }
}

/// Idents lexically known to denote hash containers (or values derefing
/// to one) in this file.
fn collect_hash_names(ts: &TokenStream<'_>) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mark = |n: &str, names: &mut Vec<String>| {
        if !names.iter().any(|m| m == n) {
            names.push(n.to_string());
        }
    };
    // Pass 1: `name : <type>` annotations and `fn name(..) -> <type>`.
    for i in 0..ts.tokens.len() {
        if !ts.is_code(i) || ts.tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let text = ts.text(i);
        if text == "fn" {
            if let Some(name_idx) = ts.next_code(i) {
                if return_type_is_hash(ts, name_idx) {
                    mark(ts.text(name_idx), &mut names);
                }
            }
            continue;
        }
        // `name :` single colon (not `::`).
        let Some(colon) = ts.next_code(i).filter(|&c| ts.text(c) == ":") else {
            continue;
        };
        if ts.next_code(colon).is_some_and(|c2| ts.text(c2) == ":") {
            continue; // path `::`
        }
        if ts.prev_code(i).is_some_and(|p| ts.text(p) == ":") {
            continue; // second segment of `a::b`
        }
        if let Some(ty_start) = ts.next_code(colon) {
            if outermost_type_is_hash(ts, ty_start) {
                mark(text, &mut names);
            }
        }
    }
    // Pass 2 (after pass 1 so markings propagate): `let [mut] name = init`
    // where init's leading ident is hash-typed, a hash constructor, or a
    // hash-returning fn.
    for i in 0..ts.tokens.len() {
        if !ts.is_code(i) || ts.text(i) != "let" {
            continue;
        }
        let mut j = match ts.next_code(i) {
            Some(j) => j,
            None => continue,
        };
        if ts.text(j) == "mut" {
            j = match ts.next_code(j) {
                Some(j) => j,
                None => continue,
            };
        }
        if ts.tokens[j].kind != TokenKind::Ident {
            continue;
        }
        let name = ts.text(j);
        // Skip over an optional `: type` annotation (pass 1 handled it).
        let Some(mut k) = ts.next_code(j) else {
            continue;
        };
        if ts.text(k) != "=" {
            let end = ts.statement_end(i);
            let eq = (k..end).find(|&e| ts.is_code(e) && ts.text(e) == "=");
            k = match eq {
                Some(e) => e,
                None => continue,
            };
        }
        // Leading ident of the initializer (skip `&`, `mut`, `*`).
        let mut lead = ts.next_code(k);
        while let Some(l) = lead {
            if matches!(ts.text(l), "&" | "mut" | "*") {
                lead = ts.next_code(l);
            } else {
                break;
            }
        }
        if let Some(l) = lead {
            let lt = ts.text(l);
            if matches!(lt, "HashMap" | "HashSet") || names.iter().any(|m| m == lt) {
                mark(name, &mut names);
            }
        }
    }
    names
}

/// Starting at a `fn`'s name token, true when its `-> <type>` return
/// mentions `HashMap`/`HashSet` (any wrapper — a guard or ref to a hash
/// container still iterates like one).
fn return_type_is_hash(ts: &TokenStream<'_>, name_idx: usize) -> bool {
    let mut j = name_idx;
    let mut arrow = None;
    while j < ts.tokens.len() {
        if !ts.is_code(j) {
            j += 1;
            continue;
        }
        let t = &ts.tokens[j];
        if t.kind == TokenKind::Open(Delim::Brace) || ts.text(j) == ";" {
            break;
        }
        if ts.text(j) == ">" && j > 0 && ts.text(j - 1) == "-" {
            arrow = Some(j);
        }
        j += 1;
    }
    let Some(a) = arrow else {
        return false;
    };
    (a..j).any(|k| ts.is_code(k) && matches!(ts.text(k), "HashMap" | "HashSet"))
}

/// Walks a type annotation's tokens: true when the outermost concrete
/// container is `HashMap`/`HashSet`, seeing through reference and
/// smart-pointer/guard wrappers. A sequence container (`Vec`, arrays)
/// stops the walk — iterating a `Vec<HashMap<…>>` is order-stable.
fn outermost_type_is_hash(ts: &TokenStream<'_>, mut i: usize) -> bool {
    const PASS_THROUGH: [&str; 11] = [
        "Arc",
        "Rc",
        "Box",
        "Option",
        "Mutex",
        "RwLock",
        "MutexGuard",
        "RwLockReadGuard",
        "RwLockWriteGuard",
        "Ref",
        "RefMut",
    ];
    let mut hops = 0;
    while i < ts.tokens.len() && hops < 32 {
        hops += 1;
        if !ts.is_code(i) {
            i += 1;
            continue;
        }
        match ts.tokens[i].kind {
            TokenKind::Ident => {
                let t = ts.text(i);
                if matches!(t, "HashMap" | "HashSet") {
                    return true;
                }
                if t == "dyn" || t == "mut" {
                    i += 1;
                    continue;
                }
                if PASS_THROUGH.contains(&t) {
                    // Step past `Name <` into the parameter list; also
                    // tolerate `std :: sync :: Mutex` style paths.
                    i += 1;
                    continue;
                }
                return false;
            }
            TokenKind::Lifetime => {
                i += 1;
            }
            TokenKind::Punct => {
                // `&`, `<`, `,`, `::` path separators are transparent.
                if matches!(ts.text(i), "&" | "<" | ":" | "," | "_") {
                    i += 1;
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
    false
}

/// True when the token range contains an order-sensitive sink and the
/// statement is not an order-insensitive reduction.
fn statement_sinks_order(ts: &TokenStream<'_>, start: usize, end: usize) -> bool {
    let mut sink = false;
    for j in start..end.min(ts.tokens.len()) {
        if !ts.is_code(j) || ts.tokens[j].kind != TokenKind::Ident {
            continue;
        }
        let t = ts.text(j);
        if ORDER_NEUTRALIZERS.contains(&t) {
            return false;
        }
        if ORDER_SINKS.contains(&t) {
            sink = true;
        }
        if t.starts_with("sort") {
            return false;
        }
    }
    sink
}

/// True when, after the statement/loop, the enclosing block sorts
/// something (`.sort*` on any ident) before the block ends — the
/// collect-then-sort idiom.
fn sorted_later(ts: &TokenStream<'_>, start: usize, end: usize) -> bool {
    let close = ts.enclosing_block_close(start.min(ts.tokens.len().saturating_sub(1)));
    (end..close.min(ts.tokens.len())).any(|j| {
        ts.is_code(j)
            && ts.tokens[j].kind == TokenKind::Ident
            && ts.text(j).starts_with("sort")
            && ts.prev_code(j).is_some_and(|p| ts.text(p) == ".")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_regions_for;

    fn check_src(src: &str) -> Vec<Violation> {
        let ts = lex(src);
        let regions = test_regions_for(src);
        let mut out = Vec::new();
        check(&ts, src, &regions, FileKind::Library, &mut out);
        out.sort_by_key(|v| (v.line, v.rule.id()));
        out
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule.id()).collect()
    }

    // ---- L5 ----

    #[test]
    fn l5_guard_binding_across_recv_fires() {
        let src = "fn f(rx: &Mutex<Receiver<u32>>) {\n\
                   \x20   let guard = rx.lock().unwrap_or_default();\n\
                   \x20   let x = guard.recv();\n\
                   }\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L5"], "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn l5_scope_ends_at_block_close() {
        let src = "fn f(rx: &Mutex<u32>, ch: &Receiver<u32>) {\n\
                   \x20   { let g = rx.lock(); g.get(); }\n\
                   \x20   let x = ch.recv();\n\
                   }\n";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn l5_drop_ends_guard_early() {
        let src = "fn f(rx: &Mutex<u32>, ch: &Receiver<u32>) {\n\
                   \x20   let g = rx.lock();\n\
                   \x20   drop(g);\n\
                   \x20   let x = ch.recv();\n\
                   }\n";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn l5_temporary_guard_same_statement_fires() {
        let src = "fn f(rx: &Mutex<Receiver<u32>>) {\n\
                   \x20   let x = rx.lock().recv_timeout(T);\n\
                   }\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L5"], "{v:?}");
    }

    #[test]
    fn l5_tcpstream_connect_fires_and_tests_exempt() {
        let src = "fn f(m: &Mutex<u32>) {\n\
                   \x20   let g = m.lock();\n\
                   \x20   let s = TcpStream::connect(addr);\n\
                   }\n\
                   #[cfg(test)]\nmod tests {\n\
                   \x20   fn t(m: &Mutex<Receiver<u32>>) { let g = m.lock(); g.recv(); }\n\
                   }\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L5"], "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn l5_join_on_thread_handle_fires_but_not_without_guard() {
        let src = "fn f(h: JoinHandle<()>) { let _ = h.join(); }\n";
        assert!(check_src(src).is_empty(), "no guard, no finding");
        let src2 = "fn f(m: &Mutex<u32>, h: JoinHandle<()>) {\n\
                    \x20   let g = m.lock();\n\
                    \x20   let _ = h.join();\n\
                    }\n";
        assert_eq!(rules_of(&check_src(src2)), ["L5"]);
    }

    // ---- L6 ----

    #[test]
    fn l6_missing_ord_comment_fires() {
        let src = "fn f(a: &AtomicBool) { a.store(true, Ordering::Release); }\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L6"], "{v:?}");
    }

    #[test]
    fn l6_justified_line_is_clean() {
        let src = "fn f(a: &AtomicBool) {\n\
                   \x20   a.store(true, Ordering::Release); // ord: publishes the stop flag\n\
                   }\n";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn l6_empty_justification_fires() {
        let src = "fn f(a: &AtomicBool) { a.load(Ordering::Acquire); // ord:\n}\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L6"], "{v:?}");
        assert!(v[0].message.contains("empty"), "{v:?}");
    }

    #[test]
    fn l6_stale_ord_comment_fires() {
        let src = "fn f() { let x = 1; // ord: left over from a refactor\n}\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L6"], "{v:?}");
        assert!(v[0].message.contains("stale"), "{v:?}");
    }

    #[test]
    fn l6_two_orderings_one_line_one_comment() {
        let src = "fn f(a: &AtomicUsize) {\n\
                   \x20   a.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| Some(v)); \
                   // ord: RMW publishes the slot count; failure path re-reads it\n\
                   }\n";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn l6_comment_on_line_above_is_accepted() {
        // rustfmt moves a trailing comment off a `{`-ending statement, so
        // the justification may sit on the line directly above instead.
        let src = "fn f(a: &AtomicBool) {\n\
                   \x20   // ord: Acquire pairs with the Release store in shutdown\n\
                   \x20   if a.load(Ordering::Acquire) {\n\
                   \x20       return;\n\
                   \x20   }\n\
                   }\n";
        assert!(check_src(src).is_empty(), "{:?}", check_src(src));
    }

    #[test]
    fn l6_line_above_comment_serves_only_one_use() {
        // The standalone comment justifies the line below; a second,
        // uncommented use two lines down still fires.
        let src = "fn f(a: &AtomicBool) {\n\
                   \x20   // ord: covers only the next line\n\
                   \x20   a.store(true, Ordering::Release);\n\
                   \x20   a.store(false, Ordering::Release);\n\
                   }\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L6"], "{v:?}");
        assert_eq!(v[0].line, 4, "{v:?}");
    }

    #[test]
    fn l6_ignores_ordering_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   \x20   fn t(a: &AtomicBool) { a.load(Ordering::Acquire); }\n\
                   }\n";
        assert!(check_src(src).is_empty());
    }

    // ---- L7 ----

    #[test]
    fn l7_narrow_target_unknown_source_fires() {
        let src = "pub fn f(x: u64) -> u32 { x as u32 }\n";
        assert_eq!(rules_of(&check_src(src)), ["L7"]);
    }

    #[test]
    fn l7_chained_cast_known_source() {
        let src = "pub fn f(x: u32) -> usize { x as u64 as usize }\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L7"], "{v:?}");
        assert!(v[0].message.contains("u64"), "{v:?}");
    }

    #[test]
    fn l7_float_to_int_via_method_fires() {
        let src = "pub fn f(x: f64) -> usize { x.round() as usize }\n";
        assert_eq!(rules_of(&check_src(src)), ["L7"]);
    }

    #[test]
    fn l7_float_paren_operand_fires() {
        let src = "pub fn f(n: usize, a: f64) -> usize { (n as f64 * a) as usize }\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L7"], "{v:?}");
    }

    #[test]
    fn l7_widening_and_as_f64_are_clean() {
        let src = "pub fn f(x: u32, v: &[f64]) -> f64 {\n\
                   \x20   let a = x as u64;\n\
                   \x20   let b = v.len() as f64;\n\
                   \x20   let c = x as f64;\n\
                   \x20   a as f64 + b + c\n\
                   }\n";
        let v = check_src(src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn l7_len_as_u16_fires_and_fitting_literal_clean() {
        let src = "pub fn f(v: &[u8]) -> u16 { v.len() as u16 }\n\
                   pub fn g() -> u8 { 255 as u8 }\n\
                   pub fn h() -> u8 { 256 as u8 }\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L7", "L7"], "{v:?}");
        assert_eq!(v[0].line, 1);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn l7_ignores_tests_and_non_numeric_as() {
        let src = "pub fn f(x: &dyn Any) { let _ = x as &dyn Other; }\n\
                   #[cfg(test)]\nmod tests { fn t(x: u64) -> u32 { x as u32 } }\n";
        assert!(check_src(src).is_empty());
    }

    // ---- L8 ----

    #[test]
    fn l8_collect_from_hashmap_iter_fires() {
        let src = "use std::collections::HashMap;\n\
                   pub fn f(m: &HashMap<u64, u32>) -> Vec<u64> {\n\
                   \x20   m.keys().copied().collect()\n\
                   }\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L8"], "{v:?}");
    }

    #[test]
    fn l8_collect_then_sort_is_clean() {
        let src = "pub fn f(m: &HashMap<u64, u32>) -> Vec<u64> {\n\
                   \x20   let mut v: Vec<u64> = m.keys().copied().collect();\n\
                   \x20   v.sort_unstable();\n\
                   \x20   v\n\
                   }\n";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn l8_sum_and_count_are_clean() {
        let src = "pub fn f(m: &HashMap<u64, u32>) -> u32 { m.values().sum() }\n\
                   pub fn g(m: &HashMap<u64, u32>) -> usize { m.iter().count() }\n";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn l8_for_loop_push_fires() {
        let src = "pub fn f(set: &HashSet<u32>) -> Vec<u32> {\n\
                   \x20   let mut out = Vec::new();\n\
                   \x20   for v in set {\n\
                   \x20       out.push(*v);\n\
                   \x20   }\n\
                   \x20   out\n\
                   }\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L8"], "{v:?}");
    }

    #[test]
    fn l8_for_loop_then_sort_is_clean() {
        let src = "pub fn f(set: &HashSet<u32>) -> Vec<u32> {\n\
                   \x20   let mut out = Vec::new();\n\
                   \x20   for v in set {\n\
                   \x20       out.push(*v);\n\
                   \x20   }\n\
                   \x20   out.sort_unstable();\n\
                   \x20   out\n\
                   }\n";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn l8_sees_through_guard_returning_fn() {
        let src =
            "fn lock_shard(m: &Mutex<HashMap<u64, u32>>) -> MutexGuard<'_, HashMap<u64, u32>> {\n\
                   \x20   m.lock().unwrap_or_else(|p| p.into_inner())\n\
                   }\n\
                   pub fn stale(m: &Mutex<HashMap<u64, u32>>) -> Vec<u64> {\n\
                   \x20   let shard = lock_shard(m);\n\
                   \x20   shard.iter().map(|(&k, _)| k).collect()\n\
                   }\n";
        let v = check_src(src);
        assert_eq!(rules_of(&v), ["L8"], "{v:?}");
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn l8_vec_of_hashmaps_not_marked() {
        let src = "pub fn f(shards: &Vec<Mutex<HashMap<u64, u32>>>) -> Vec<usize> {\n\
                   \x20   let mut out = Vec::new();\n\
                   \x20   for s in shards {\n\
                   \x20       out.push(1);\n\
                   \x20   }\n\
                   \x20   out\n\
                   }\n";
        assert!(check_src(src).is_empty());
    }

    #[test]
    fn l8_btreemap_is_clean() {
        let src = "pub fn f(m: &BTreeMap<u64, u32>) -> Vec<u64> { m.keys().copied().collect() }\n";
        assert!(check_src(src).is_empty());
    }
}
