//! Every registered experiment must run end to end (quick sizes) and
//! produce non-trivial output — the reproduction harness itself is under
//! test.

use exploratory_training::experiments::{all_experiments, experiment_by_id, RunOptions};

#[test]
fn all_experiments_run_in_quick_mode() {
    let opts = RunOptions::quick();
    for e in all_experiments() {
        let out = (e.run)(&opts);
        assert_eq!(out.id, e.id);
        assert!(
            out.text.trim().len() > 40,
            "{}: report too small:\n{}",
            e.id,
            out.text
        );
        for (name, content) in &out.csv {
            assert!(name.ends_with(".csv"), "{}: artifact {name}", e.id);
            assert!(
                content.lines().count() >= 2,
                "{}: CSV {name} has no data rows",
                e.id
            );
        }
    }
}

#[test]
fn registry_covers_every_paper_artifact() {
    // One experiment per table and figure, plus Proposition 1.
    for id in [
        "table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "prop1",
    ] {
        assert!(experiment_by_id(id).is_some(), "missing experiment {id}");
    }
}

#[test]
fn table1_is_exact() {
    // The paper's worked example must reproduce to the digit.
    let out = (experiment_by_id("table1").unwrap().run)(&RunOptions::quick());
    assert!(out.text.contains("1/25"), "{}", out.text);
    assert!(out.text.contains("0.040"), "{}", out.text);
    assert!(out.text.contains("0.96"), "{}", out.text);
}

#[test]
fn experiments_are_deterministic() {
    let opts = RunOptions::quick();
    let a = (experiment_by_id("fig1").unwrap().run)(&opts);
    let b = (experiment_by_id("fig1").unwrap().run)(&opts);
    assert_eq!(a.text, b.text);
    assert_eq!(a.csv, b.csv);
}
