//! Cross-crate property tests: invariants that must hold across the whole
//! pipeline for randomized configurations.

use std::sync::Arc;

use exploratory_training::belief::{build_prior, EvidenceConfig, PriorConfig, PriorSpec};
use exploratory_training::data::gen::DatasetName;
use exploratory_training::data::{inject_errors, violation_degree, InjectConfig};
use exploratory_training::fd::{apply_repairs, g1_of, g2_g3, propose_repairs, Fd, HypothesisSpace};
use exploratory_training::game::trainer::FpTrainer;
use exploratory_training::game::{
    run_session, Learner, ResponseStrategy, SessionConfig, StrategyKind,
};
use proptest::prelude::*;

fn dataset_strategy() -> impl Strategy<Value = DatasetName> {
    prop_oneof![
        Just(DatasetName::Omdb),
        Just(DatasetName::Airport),
        Just(DatasetName::Tax),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn injection_reaches_degree_and_tracks_ground_truth(
        dataset in dataset_strategy(),
        degree in 0.05f64..0.25,
        seed in 0u64..1000,
    ) {
        let mut ds = dataset.generate(150, seed);
        let fds = ds.exact_fds.clone();
        let inj = inject_errors(&mut ds.table, &fds, &[], &InjectConfig::with_degree(degree, seed));
        prop_assert!(inj.achieved_degree >= degree - 1e-12);
        prop_assert!((violation_degree(&ds.table, &fds) - inj.achieved_degree).abs() < 1e-12);
        // Every dirty cell belongs to a dirty row.
        for &(row, _) in &inj.dirty_cells {
            prop_assert!(inj.dirty_rows[row]);
        }
        // Violations cannot exist without dirty rows (clean data is exact).
        prop_assert!(inj.dirty_row_count() > 0);
    }

    #[test]
    fn measures_are_consistent(
        dataset in dataset_strategy(),
        degree in 0.05f64..0.2,
        seed in 0u64..1000,
    ) {
        let mut ds = dataset.generate(120, seed);
        let fds = ds.exact_fds.clone();
        let _ = inject_errors(&mut ds.table, &fds, &[], &InjectConfig::with_degree(degree, seed));
        for spec in &fds {
            let fd = Fd::from_spec(spec);
            let g1 = g1_of(&ds.table, &fd);
            let m = g2_g3(&ds.table, &fd);
            // g3 <= g2 (removing the minority never exceeds the flagged set).
            prop_assert!(m.g3 <= m.g2 + 1e-12);
            // g1's violating pairs imply g2 > 0 and vice versa.
            prop_assert_eq!(g1.violating_pairs > 0, m.g2 > 0.0);
            // All bounded.
            prop_assert!((0.0..=1.0).contains(&g1.g1()));
            prop_assert!((0.0..=1.0).contains(&g1.violation_rate()));
        }
    }

    #[test]
    fn repairs_never_increase_violation_degree(
        dataset in dataset_strategy(),
        seed in 0u64..1000,
    ) {
        let mut ds = dataset.generate(150, seed);
        let fds = ds.exact_fds.clone();
        let _ = inject_errors(&mut ds.table, &fds, &[], &InjectConfig::with_degree(0.12, seed));
        let space = HypothesisSpace::from_fds(fds.iter().map(Fd::from_spec));
        let conf = vec![0.95; space.len()];
        let repairs = propose_repairs(&ds.table, &space, &conf, 0.5);
        let before = violation_degree(&ds.table, &fds);
        let mut repaired = ds.table.clone();
        let _ = apply_repairs(&mut repaired, &repairs);
        let after = violation_degree(&repaired, &fds);
        prop_assert!(after <= before + 1e-12, "degree {before} -> {after}");
    }

    #[test]
    fn capped_space_respects_contract(
        dataset in dataset_strategy(),
        cap in 10usize..40,
        seed in 0u64..1000,
    ) {
        let ds = dataset.generate(150, seed);
        let pinned: Vec<Fd> = ds.exact_fds.iter().map(Fd::from_spec).collect();
        prop_assume!(cap >= pinned.len());
        let space = HypothesisSpace::capped(&ds.table, 3, cap, 5, &pinned);
        prop_assert!(space.len() <= cap.max(pinned.len()));
        for fd in &pinned {
            prop_assert!(space.contains(fd));
        }
        // No duplicates by construction.
        let mut fds: Vec<Fd> = space.fds().to_vec();
        fds.sort_unstable();
        fds.dedup();
        prop_assert_eq!(fds.len(), space.len());
    }

    #[test]
    fn short_sessions_emit_sane_metrics(
        kind_idx in 0usize..4,
        seed in 0u64..200,
    ) {
        let kind = StrategyKind::PAPER_METHODS[kind_idx];
        let mut ds = DatasetName::Omdb.generate(120, seed);
        let fds = ds.exact_fds.clone();
        let inj = inject_errors(&mut ds.table, &fds, &[], &InjectConfig::with_degree(0.1, seed));
        let pinned: Vec<Fd> = fds.iter().map(Fd::from_spec).collect();
        let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 14, 8, &pinned));
        let cfg = PriorConfig { strength: 0.3, ..PriorConfig::default() };
        let mut trainer = FpTrainer::new(
            build_prior(&PriorSpec::Random { seed }, &cfg, &space, &ds.table),
            EvidenceConfig::default());
        let mut learner = Learner::new(
            build_prior(&PriorSpec::DataEstimate, &cfg, &space, &ds.table),
            ResponseStrategy::paper(kind),
            EvidenceConfig::default(),
            seed);
        let r = run_session(
            &ds.table, space, &inj.dirty_rows,
            SessionConfig { iterations: 6, seed, ..SessionConfig::default() },
            &mut trainer, &mut learner);
        prop_assert!(!r.metrics.is_empty());
        for m in &r.metrics {
            prop_assert!((0.0..=1.0).contains(&m.mae));
            prop_assert!((0.0..=1.0).contains(&m.learner_f1));
            prop_assert!((0.0..=1.0).contains(&m.agreement));
            prop_assert!((0.0..=1.0).contains(&m.phi_dirty));
            prop_assert!(m.policy_entropy >= -1e-12);
            prop_assert!(m.learner_drift >= 0.0 && m.trainer_drift >= 0.0);
        }
        // Confidence vectors stay probabilities.
        for c in r.learner_confidences.iter().chain(&r.trainer_confidences) {
            prop_assert!((0.0..=1.0).contains(c));
        }
    }
}
