//! Cross-crate behavioural contracts of the trainer models: the learning
//! annotator vs the stationary/oracle/noisy baselines the paper contrasts
//! against.

use std::sync::Arc;

use exploratory_training::belief::{
    build_prior, Belief, Beta, EvidenceConfig, HypothesisTester, PriorConfig, PriorSpec, ScoreMode,
};
use exploratory_training::data::gen::DatasetName;
use exploratory_training::data::{inject_errors, InjectConfig, Table};
use exploratory_training::fd::{Fd, HypothesisSpace};
use exploratory_training::game::trainer::{
    FpTrainer, HtTrainer, NoisyTrainer, OracleTrainer, StationaryTrainer, Trainer,
};
use exploratory_training::game::{
    run_session, Learner, ResponseStrategy, SessionConfig, StrategyKind,
};

struct Fixture {
    table: Table,
    dirty: Vec<bool>,
    space: Arc<HypothesisSpace>,
    truth: Vec<Fd>,
}

fn fixture(seed: u64) -> Fixture {
    let mut ds = DatasetName::Omdb.generate(180, seed);
    let specs = ds.exact_fds.clone();
    let injection = inject_errors(
        &mut ds.table,
        &specs,
        &[],
        &InjectConfig::with_degree(0.12, seed),
    );
    let truth: Vec<Fd> = specs.iter().map(Fd::from_spec).collect();
    let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 24, 10, &truth));
    Fixture {
        table: ds.table,
        dirty: injection.dirty_rows,
        space,
        truth,
    }
}

fn run_with(
    f: &Fixture,
    trainer: &mut dyn Trainer,
    seed: u64,
) -> exploratory_training::game::SessionResult {
    let prior_cfg = PriorConfig {
        strength: 0.3,
        ..PriorConfig::default()
    };
    let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &f.space, &f.table);
    let mut learner = Learner::new(
        learner_prior,
        ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
        EvidenceConfig::default(),
        seed,
    );
    run_session(
        &f.table,
        f.space.clone(),
        &f.dirty,
        SessionConfig {
            iterations: 20,
            seed,
            ..SessionConfig::default()
        },
        trainer,
        &mut learner,
    )
}

#[test]
fn fp_trainer_raises_true_fd_confidence() {
    let f = fixture(3);
    let prior_cfg = PriorConfig {
        strength: 0.3,
        ..PriorConfig::default()
    };
    let prior = build_prior(
        &PriorSpec::Uniform { d: 0.5 },
        &prior_cfg,
        &f.space,
        &f.table,
    );
    let mut trainer = FpTrainer::new(prior, EvidenceConfig::default());
    let r = run_with(&f, &mut trainer, 3);
    // At least one ground-truth FD should end clearly above the uniform
    // start while the average junk FD stays lower.
    let truth_best = f
        .truth
        .iter()
        .filter_map(|fd| f.space.index_of(fd))
        .map(|i| r.trainer_confidences[i])
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(truth_best > 0.75, "best true-FD confidence {truth_best:.2}");
}

#[test]
fn stationary_trainer_is_immune_to_interaction() {
    let f = fixture(5);
    let belief = Belief::constant(f.space.clone(), Beta::from_mean_std(0.6, 0.05));
    let mut trainer = StationaryTrainer::new(belief.clone());
    let before = trainer.confidences();
    let _ = run_with(&f, &mut trainer, 5);
    assert_eq!(trainer.confidences(), before);
}

#[test]
fn oracle_trainer_gives_learner_the_cleanest_signal() {
    let f = fixture(7);
    // Oracle: labels straight from ground truth.
    let oracle_conf: Vec<f64> = f
        .space
        .fds()
        .iter()
        .map(|fd| if f.truth.contains(fd) { 0.98 } else { 0.05 })
        .collect();
    let mut oracle = OracleTrainer::new(f.dirty.clone(), oracle_conf);
    let r_oracle = run_with(&f, &mut oracle, 7);
    // A heavily noisy trainer: the same oracle with 40% label flips.
    let oracle_conf2: Vec<f64> = f
        .space
        .fds()
        .iter()
        .map(|fd| if f.truth.contains(fd) { 0.98 } else { 0.05 })
        .collect();
    let mut noisy = NoisyTrainer::new(OracleTrainer::new(f.dirty.clone(), oracle_conf2), 0.4, 7);
    let r_noisy = run_with(&f, &mut noisy, 7);
    let f1_oracle = r_oracle.metrics.last().unwrap().learner_f1;
    let f1_noisy = r_noisy.metrics.last().unwrap().learner_f1;
    assert!(
        f1_oracle >= f1_noisy,
        "oracle labels should not be worse than 40%-flipped labels \
         (oracle {f1_oracle:.3}, noisy {f1_noisy:.3})"
    );
}

#[test]
fn ht_trainer_runs_and_reports_point_belief() {
    let f = fixture(9);
    let tester = HypothesisTester::new(f.space.clone(), 0, 0.7, ScoreMode::DataSatisfaction);
    let mut trainer = HtTrainer::new(tester);
    let r = run_with(&f, &mut trainer, 9);
    assert_eq!(r.metrics.len(), 20);
    let conf = trainer.confidences();
    let held = trainer.current_index();
    assert!(conf[held] > 0.9);
    assert_eq!(
        conf.iter().filter(|&&c| c > 0.9).count(),
        1,
        "HT holds exactly one hypothesis"
    );
}
