//! Cross-crate integration: the full exploratory-training pipeline on every
//! dataset of the paper.

use std::sync::Arc;

use exploratory_training::belief::{build_prior, EvidenceConfig, PriorConfig, PriorSpec};
use exploratory_training::data::gen::DatasetName;
use exploratory_training::data::{inject_errors, violation_degree, InjectConfig};
use exploratory_training::fd::{Fd, HypothesisSpace};
use exploratory_training::game::trainer::FpTrainer;
use exploratory_training::game::{
    run_session, Learner, ResponseStrategy, SessionConfig, SessionResult, StrategyKind,
};

fn pipeline(dataset: DatasetName, kind: StrategyKind, seed: u64) -> SessionResult {
    let mut ds = dataset.generate(160, seed);
    let truth = ds.exact_fds.clone();
    let injection = inject_errors(
        &mut ds.table,
        &truth,
        &[],
        &InjectConfig::with_degree(0.12, seed),
    );
    assert!(injection.achieved_degree >= 0.12);
    assert!(violation_degree(&ds.table, &truth) >= 0.12);

    let pinned: Vec<Fd> = truth.iter().map(Fd::from_spec).collect();
    let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 24, 10, &pinned));
    let prior_cfg = PriorConfig {
        strength: 0.3,
        ..PriorConfig::default()
    };
    let trainer_prior = build_prior(&PriorSpec::Random { seed }, &prior_cfg, &space, &ds.table);
    let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
    let mut trainer = FpTrainer::new(trainer_prior, EvidenceConfig::default());
    let mut learner = Learner::new(
        learner_prior,
        ResponseStrategy::paper(kind),
        EvidenceConfig::default(),
        seed,
    );
    let cfg = SessionConfig {
        iterations: 20,
        seed,
        ..SessionConfig::default()
    };
    run_session(
        &ds.table,
        space,
        &injection.dirty_rows,
        cfg,
        &mut trainer,
        &mut learner,
    )
}

#[test]
fn every_dataset_supports_a_full_session() {
    for dataset in DatasetName::ALL {
        let r = pipeline(dataset, StrategyKind::StochasticBestResponse, 5);
        assert_eq!(r.metrics.len(), 20, "{:?}", dataset);
        for m in &r.metrics {
            assert!((0.0..=1.0).contains(&m.mae));
            assert!((0.0..=1.0).contains(&m.learner_f1));
            assert!((0.0..=1.0).contains(&m.learner_precision));
            assert!((0.0..=1.0).contains(&m.learner_recall));
            assert!((0.0..=1.0).contains(&m.agreement));
            assert!((0.0..=1.0).contains(&m.phi_dirty));
            assert!(m.policy_entropy >= 0.0);
        }
    }
}

#[test]
fn mae_improves_on_every_dataset() {
    for dataset in DatasetName::ALL {
        let r = pipeline(dataset, StrategyKind::Random, 9);
        let first = r.metrics[0].mae;
        let last = r.convergence.final_mae;
        assert!(
            last < first,
            "{:?}: MAE {first:.3} -> {last:.3} should fall",
            dataset
        );
    }
}

#[test]
fn every_paper_method_completes() {
    for kind in StrategyKind::PAPER_METHODS {
        let r = pipeline(DatasetName::Omdb, kind, 11);
        assert_eq!(r.metrics.len(), 20, "{}", kind.as_str());
    }
}

#[test]
fn full_pipeline_is_deterministic() {
    let a = pipeline(DatasetName::Tax, StrategyKind::StochasticUncertainty, 3);
    let b = pipeline(DatasetName::Tax, StrategyKind::StochasticUncertainty, 3);
    assert_eq!(a.mae_series(), b.mae_series());
    assert_eq!(a.f1_series(), b.f1_series());
    assert_eq!(a.learner_confidences, b.learner_confidences);
    let c = pipeline(DatasetName::Tax, StrategyKind::StochasticUncertainty, 4);
    assert_ne!(a.mae_series(), c.mae_series(), "seeds must matter");
}

#[test]
fn selected_pairs_stay_fresh_and_in_train_split() {
    let r = pipeline(DatasetName::Airport, StrategyKind::UncertaintySampling, 2);
    let mut seen = std::collections::HashSet::new();
    for i in &r.history {
        for p in &i.selected {
            assert!(seen.insert(*p), "selected pair repeated");
        }
    }
    assert!(!seen.is_empty());
}
