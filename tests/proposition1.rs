//! Empirical check of Proposition 1: the game between an FP trainer (best
//! response labeling) and an FP learner with Stochastic Best Response
//! converges to a stable shared state.

use std::sync::Arc;

use exploratory_training::belief::{build_prior, EvidenceConfig, PriorConfig, PriorSpec};
use exploratory_training::data::gen::DatasetName;
use exploratory_training::data::{inject_errors, InjectConfig};
use exploratory_training::fd::{Fd, HypothesisSpace};
use exploratory_training::game::trainer::FpTrainer;
use exploratory_training::game::{
    run_session, Learner, ResponseStrategy, SessionConfig, StrategyKind,
};

fn long_session(seed: u64) -> exploratory_training::game::SessionResult {
    let mut ds = DatasetName::Omdb.generate(200, seed);
    let truth = ds.exact_fds.clone();
    let injection = inject_errors(
        &mut ds.table,
        &truth,
        &[],
        &InjectConfig::with_degree(0.10, seed),
    );
    let pinned: Vec<Fd> = truth.iter().map(Fd::from_spec).collect();
    let space = Arc::new(HypothesisSpace::capped(&ds.table, 3, 24, 12, &pinned));
    let prior_cfg = PriorConfig {
        strength: 0.3,
        ..PriorConfig::default()
    };
    let trainer_prior = build_prior(&PriorSpec::Random { seed }, &prior_cfg, &space, &ds.table);
    let learner_prior = build_prior(&PriorSpec::DataEstimate, &prior_cfg, &space, &ds.table);
    let mut trainer = FpTrainer::new(trainer_prior, EvidenceConfig::default());
    let mut learner = Learner::new(
        learner_prior,
        ResponseStrategy::paper(StrategyKind::StochasticBestResponse),
        EvidenceConfig::default(),
        seed,
    );
    let cfg = SessionConfig {
        iterations: 90,
        eps_drift: 0.015,
        stability_window: 8,
        seed,
        ..SessionConfig::default()
    };
    run_session(
        &ds.table,
        space,
        &injection.dirty_rows,
        cfg,
        &mut trainer,
        &mut learner,
    )
}

#[test]
fn empirical_behaviour_stabilizes() {
    let r = long_session(17);
    let c = &r.convergence;
    // ε-stability: both agents' beliefs stop moving...
    assert!(
        c.converged(),
        "no stable window found (tail drift {:.4})",
        c.tail_drift
    );
    // ...and the empirical labeling frequency Φ_t is Cauchy.
    assert!(
        c.tail_phi_change < 0.02,
        "Φ_t still moving: {:.4}",
        c.tail_phi_change
    );
}

#[test]
fn beliefs_approach_each_other() {
    let r = long_session(23);
    let first = r.metrics[0].mae;
    let last = r.convergence.final_mae;
    assert!(
        last < first * 0.8,
        "expected substantial MAE reduction, got {first:.3} -> {last:.3}"
    );
    // Late-game belief movement is much smaller than early-game movement.
    let early: f64 = r.metrics[..10]
        .iter()
        .map(|m| m.learner_drift + m.trainer_drift)
        .sum();
    let late: f64 = r.metrics[r.metrics.len() - 10..]
        .iter()
        .map(|m| m.learner_drift + m.trainer_drift)
        .sum();
    assert!(
        late < early * 0.5,
        "drift should decay: early {early:.3}, late {late:.3}"
    );
}

#[test]
fn stability_holds_across_seeds() {
    for seed in [31, 47, 59] {
        let r = long_session(seed);
        assert!(
            r.convergence.tail_drift < 0.02,
            "seed {seed}: tail drift {:.4}",
            r.convergence.tail_drift
        );
    }
}
