//! Offline stand-in for `criterion`: a minimal wall-clock benchmark harness.
//!
//! The build environment resolves crates offline, so this workspace vendors
//! the slice of the criterion API the `et-bench` benches use. Statistical
//! machinery (outlier rejection, regression, HTML reports) is out of scope —
//! each benchmark is timed over a fixed number of timed iterations after a
//! short warm-up, and median/mean per-iteration times are printed.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work. Mirrors `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost; this shim runs one setup per
/// measured closure call regardless of variant.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small routine-local inputs.
    SmallInput,
    /// Larger inputs (no behavioural difference in this shim).
    LargeInput,
}

/// A benchmark identifier: `function_id` plus an optional parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter rendering.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed over by benchmark bodies.
pub struct Bencher {
    iters: u64,
    /// Mean/median per-iteration time of the last `iter*` call.
    elapsed: Vec<Duration>,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Self {
            iters,
            elapsed: Vec::new(),
        }
    }

    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass.
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.elapsed.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.elapsed.is_empty() {
            println!("{name:<50} (no measurements)");
            return;
        }
        let mut sorted = self.elapsed.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "{name:<50} median {median:>12?}  mean {mean:>12?}  ({} iters)",
            sorted.len()
        );
    }
}

const DEFAULT_SAMPLE_SIZE: u64 = 20;

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the timed iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (a no-op report boundary in this shim).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Criterion benchmark group entry point.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        compile_error!("configured criterion_group! form is not supported by the offline shim");
    };
}

/// Declares the benchmark `main` entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(unit_benches, target);

    #[test]
    fn harness_runs_groups_and_ids_render() {
        unit_benches();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| black_box(2 * 2)));
        group.bench_with_input(BenchmarkId::new("f", 42), &42u32, |b, &x| {
            b.iter_batched(|| x, |v| black_box(v + 1), BatchSize::SmallInput);
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("deg0.1").to_string(), "deg0.1");
    }
}
