//! Offline stand-in for `proptest`: a deterministic property-test runner.
//!
//! The build environment resolves crates offline, so this workspace vendors
//! the slice of the proptest API its tests use: the [`proptest!`] macro,
//! `prop_assert*`/`prop_assume!`, range/tuple/[`Just`]/[`collection::vec`]
//! strategies, [`prop_oneof!`], and [`any`].
//!
//! Differences from upstream, on purpose:
//! - **Deterministic**: each test's case stream is seeded from a hash of the
//!   test name — reruns explore identical cases. There is no persistence
//!   file and no environment-variable override.
//! - **No shrinking**: a failing case reports its case index and seed
//!   instead of a minimised input. The values are regenerable from the seed.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The generator handed to strategies; wraps the workspace [`StdRng`].
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds from an FNV-1a hash of `name`, so each test gets a stable,
    /// distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the runner aborts the test.
    Fail(String),
    /// `prop_assume!` filtered the case; the runner draws a replacement.
    Reject(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejection variant.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration; only `cases` is honoured by this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 48 }
    }
}

/// A source of generated values. Object-safe so [`prop_oneof!`] can mix
/// heterogeneous strategy types with a common `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (upstream's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws one value from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[-1e6, 1e6]`: a bounded stand-in for upstream's
    /// full-domain floats, wide enough to exercise numeric edge handling.
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1.0e6..=1.0e6)
    }
}

/// Strategy over a type's whole [`Arbitrary`] domain.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

pub mod strategy {
    //! Strategy combinators.

    use super::{Strategy, TestRng};

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies sharing a `Value` type.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng as _;
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    /// Builds a [`Union`]; the coercion target for [`crate::prop_oneof!`].
    pub fn union<T>(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        Union { arms }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case loop behind [`crate::proptest!`].

    use super::{ProptestConfig, TestCaseError, TestRng};

    /// Runs `case` until `config.cases` accepted cases pass.
    ///
    /// # Panics
    /// Panics on the first failing case, or when `prop_assume!` rejects so
    /// often that the acceptance target is unreachable.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::deterministic(name);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.cases.saturating_mul(20) + 100,
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejected} rejected, {passed}/{} passed)",
                        config.cases
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "property `{name}` failed at accepted case {passed}: {msg} \
                         (deterministic stream; rerun reproduces it)"
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut *__rng);)+
                (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($cfg:expr;) => {};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({l:?} vs {r:?})",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {l:?})",
            stringify!($lhs),
            stringify!($rhs)
        );
    }};
}

/// Rejects the current case (drawing a replacement) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$(::std::boxed::Box::new($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams_repeat() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let s = 0.0f64..1.0;
        for _ in 0..50 {
            let (va, vb) = (s.generate(&mut a), s.generate(&mut b));
            assert!((va - vb).abs() < f64::EPSILON);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u8..7, y in -2.0f64..2.0, z in 0usize..=4) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(z <= 4);
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u16..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn tuples_and_oneof(pair in (0u8..4, 0u8..4), pick in prop_oneof![Just(1u8), Just(9u8)]) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert!(pick == 1 || pick == 9);
            prop_assert_ne!(pick, 5);
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_transforms(x in (1u32..10).prop_map(|v| v * 3)) {
            prop_assert!(x % 3 == 0 && (3..30).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "failed at accepted case")]
    fn failing_property_panics() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| -> Result<(), TestCaseError> { Err(TestCaseError::fail("nope")) },
        );
    }
}
