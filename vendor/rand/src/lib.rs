//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment resolves crates offline, so this workspace vendors
//! the exact slice of `rand` it uses: an explicitly seeded [`rngs::StdRng`],
//! the [`Rng`]/[`SeedableRng`] traits, and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is load-bearing for the reproduction, so this shim goes one
//! step further than the real crate: **no entropy source exists at all**.
//! There is no `thread_rng`, no `from_entropy`, no `rand::random` — the only
//! way to obtain a generator is [`SeedableRng::seed_from_u64`] /
//! [`SeedableRng::from_seed`]. The workspace lint rule L2 (`et-lint`) bans
//! those names anyway; here they fail to compile.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — not the same stream
//! as upstream `StdRng` (ChaCha12), but the workspace only relies on
//! *seed-stability within this repository*, which the tests pin.

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from an explicit seed. This shim deliberately
/// offers no entropy-based constructor.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from a generator (the `Standard` distribution
/// of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = uniform_u128_below(rng, span);
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = uniform_u128_below(rng, span);
                (start as u128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = uniform_u128_below(rng, span);
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = uniform_u128_below(rng, span);
                (start as i128 + draw as i128) as $t
            }
        }
        #[allow(unused)]
        const _: $u = 0;
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

/// Uniform draw in `[0, bound)` by widening rejection (Lemire-style).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        let bound64 = bound as u64;
        // Rejection sampling over the top multiple of the span.
        let zone = u64::MAX - (u64::MAX - bound64 + 1) % bound64;
        loop {
            let x = rng.next_u64();
            if x <= zone {
                return (x % bound64) as u128;
            }
        }
    } else {
        // Spans above 2^64 never occur in this workspace (usize/u64 ranges
        // are always narrower); a double draw keeps the method total.
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        ((hi << 64) | lo) % bound
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `p` is in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Named generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `StdRng`; seed-stable within this
    /// repository, which is the property the reproduction pins.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for bit-exact persistence.
        ///
        /// Feeding the bytes of these words back through
        /// [`SeedableRng::from_seed`] (little-endian, word-major) rebuilds a
        /// generator that continues the exact same stream; the session
        /// journal relies on this for crash recovery.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            // An all-zero state would be a fixed point; remap it the same
            // way `from_seed` does so the two constructors agree.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; remap it.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the standard seeding recipe for xoshiro.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let x = rng.gen_range(0..5usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets reachable: {seen:?}");
        for _ in 0..1_000 {
            let x = rng.gen_range(3..=4u32);
            assert!(x == 3 || x == 4);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(13);
        let v = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(v.choose(&mut rng).copied().unwrap_or(1) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_uniform_near_half() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
