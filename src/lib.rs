//! # Exploratory Training
//!
//! A from-scratch Rust reproduction of *Exploratory Training: When Annotators
//! Learn About Data* (SIGMOD 2023). This facade crate re-exports the whole
//! workspace; see the individual crates for details:
//!
//! * [`data`] — tables, dataset generators, error injection ([`et_data`]).
//! * [`fd`] — functional dependencies, g1, violations ([`et_fd`]).
//! * [`belief`] — Beta beliefs, priors, learning rules ([`et_belief`]).
//! * [`game`] — the exploratory-training game itself ([`et_core`]).
//! * [`metrics`] — MAE, F1, MRR ([`et_metrics`]).
//! * [`userstudy`] — the simulated user study ([`et_userstudy`]).
//! * [`experiments`] — the per-table/figure experiment registry
//!   ([`et_experiments`]).
//!
//! # Example
//!
//! Compute the paper's Example 1 (`g1(Team -> City) = 0.04` on Table 1):
//!
//! ```
//! use exploratory_training::data::table::paper_table1;
//! use exploratory_training::fd::{g1_of, Fd};
//!
//! let table = paper_table1();
//! let fd = Fd::from_attrs([1], 2); // Team -> City
//! let g = g1_of(&table, &fd);
//! assert!((g.g1() - 0.04).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub use et_belief as belief;
pub use et_core as game;
pub use et_data as data;
pub use et_experiments as experiments;
pub use et_fd as fd;
pub use et_metrics as metrics;
pub use et_serve as serve;
pub use et_userstudy as userstudy;
