#!/usr/bin/env bash
# The full local CI gate, in fail-fast order: cheapest checks first.
#
#   ./scripts/ci.sh            # everything
#
# Mirrors what a hosted pipeline would run; each step is independently
# runnable (see README "Correctness tooling").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> et-lint (L1-L14 workspace rules, budget ${LINT_BUDGET_SECS:=60}s)"
# Build first so the budget bounds analysis time, not rustc time. The lint
# walks + lexes + parses the whole workspace and links the call graph on
# every run; if it creeps past the wall-clock budget it stops being a
# run-on-every-push gate, so that creep fails CI loudly (DESIGN.md §12.5).
cargo build -q --release -p et-lint
LINT_T0=$(date +%s)
./target/release/et-lint
LINT_ELAPSED=$(( $(date +%s) - LINT_T0 ))
echo "    et-lint wall clock: ${LINT_ELAPSED}s (budget ${LINT_BUDGET_SECS}s)"
if [ "$LINT_ELAPSED" -gt "$LINT_BUDGET_SECS" ]; then
  echo "FATAL: et-lint took ${LINT_ELAPSED}s, over the ${LINT_BUDGET_SECS}s budget" >&2
  echo "       (profile the walker/parser or raise LINT_BUDGET_SECS with a reason)" >&2
  exit 1
fi

echo "==> HOTPATH.json cost report is current (DESIGN.md §14)"
# The checked-in hot-path budget must match what the lint derives from the
# sources: any new allocation/lock/IO reachable from a [[hot]] root — even
# a vetted one — moves the counts and shows up as a diff here, so cost
# changes are reviewed like API changes. Deterministic: no timestamps.
HOTPATH_TMP="$(mktemp /tmp/et-hotpath.XXXXXX.json)"
./target/release/et-lint --cost-report > "$HOTPATH_TMP"
if ! diff -u HOTPATH.json "$HOTPATH_TMP"; then
  echo "FATAL: HOTPATH.json is stale — the hot-path cost profile changed" >&2
  echo "       regenerate: ./target/release/et-lint --cost-report > HOTPATH.json" >&2
  echo "       then review the diff like any other contract change" >&2
  rm -f "$HOTPATH_TMP"
  exit 1
fi
rm -f "$HOTPATH_TMP"

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --workspace --no-deps

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> et-serve bins + server integration + event-loop transport tests"
cargo build -q --release -p et-serve --bins
cargo test -q -p et-serve --test server_integration
cargo test -q -p et-serve --test framing_props
cargo test -q -p et-serve --test event_loop

echo "==> crash-injection recovery (kill -9 through the real serve binary, budget ${CRASH_BUDGET_SECS:=120}s)"
# On non-unix hosts the test itself prints SKIPPED and passes vacuously;
# here the wall clock is bounded so a hung recovery cannot wedge the gate.
if command -v timeout >/dev/null 2>&1; then
  if ! timeout "${CRASH_BUDGET_SECS}" cargo test -q -p et-serve --test crash_recovery; then
    echo "FATAL: crash_recovery failed or exceeded ${CRASH_BUDGET_SECS}s" >&2
    exit 1
  fi
else
  echo "    timeout(1) unavailable: running crash_recovery unbounded"
  cargo test -q -p et-serve --test crash_recovery
fi

echo "==> bench harness compiles + bench_json smoke (quick profile, tax budget ${ET_BENCH_TAX_BUDGET_SECS:=30}s)"
# Beyond "the baseline regenerates", the quick profile gates the delta
# rescoring path: if re-folding only the changed-FD pairs is ever slower
# than a full rescore, the cache is broken (or stale-slot thrash crept in)
# and CI should say so before a checked-in BENCH diff has to. The tax
# fixture generation inside bench_json is bounded by the exported
# wall-clock budget; over budget it skips the tax family loudly.
export ET_BENCH_TAX_BUDGET_SECS
cargo build -q --release -p et-bench --benches --bins
BENCH_OUT="$(mktemp /tmp/et-bench-substrate.XXXXXX.json)"
if ! ./target/release/bench_json --quick --out "$BENCH_OUT" \
  --gate round_latency_delta_vs_full_speedup:1.0 \
  --gate alloc_free_score_parity:0.95 \
  || [ ! -s "$BENCH_OUT" ]; then
  echo "FATAL: bench_json failed to produce $BENCH_OUT or a gate failed" >&2
  echo "       (baseline unregenerable, delta rescoring lost to a full rescore," >&2
  echo "        or the alloc-free scoring path fell below parity)" >&2
  exit 1
fi
rm -f "$BENCH_OUT"

echo "==> bench_serve smoke (quick profile, budget ${SERVE_BENCH_BUDGET_SECS:=90}s)"
# The serving benchmark must stay regenerable AND the event loop must never
# lose to thread-per-connection at equal worker count — if it does, the
# readiness transport has stopped earning its complexity. The wall clock is
# bounded so a wedged shard cannot hang the gate.
SERVE_OUT="$(mktemp /tmp/et-bench-serve.XXXXXX.json)"
BENCH_SERVE_CMD=(./target/release/bench_serve --quick --out "$SERVE_OUT"
  --gate event_loop_vs_blocking_throughput_speedup:1.0)
if command -v timeout >/dev/null 2>&1; then
  BENCH_SERVE_CMD=(timeout "${SERVE_BENCH_BUDGET_SECS}" "${BENCH_SERVE_CMD[@]}")
else
  echo "    timeout(1) unavailable: running bench_serve unbounded"
fi
if ! "${BENCH_SERVE_CMD[@]}" || [ ! -s "$SERVE_OUT" ]; then
  echo "FATAL: bench_serve failed, exceeded ${SERVE_BENCH_BUDGET_SECS}s, or a gate failed" >&2
  echo "       (BENCH_serve.json unregenerable, or the event loop lost to blocking IO)" >&2
  exit 1
fi
rm -f "$SERVE_OUT"

echo "==> invariant-checks feature armed (facade + gated crates)"
cargo test -q --features invariant-checks
cargo test -q -p et-fd --features invariant-checks
cargo test -q -p et-belief --features invariant-checks
cargo test -q -p et-core --features invariant-checks

# --- Sanitizer passes (nightly-only; skipped loudly when unavailable) ----
#
# ThreadSanitizer needs -Zsanitizer=thread plus an explicit --target, and
# -Cunsafe-allow-abi-mismatch=sanitizer because the prebuilt std/panic_unwind
# were not compiled under the sanitizer. A separate CARGO_TARGET_DIR keeps
# instrumented artifacts out of the normal build cache.
tsan_probe() {
  command -v rustup >/dev/null 2>&1 || return 1
  rustup run nightly rustc --version >/dev/null 2>&1 || return 1
  echo 'fn main() {}' | rustup run nightly rustc \
    -Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer \
    --edition 2021 -o /tmp/et-tsan-probe - >/dev/null 2>&1
}
if tsan_probe; then
  echo "==> ThreadSanitizer: et-serve server integration suite"
  # Suppressions cover two known false-positive classes of the prebuilt
  # (uninstrumented) std — see scripts/tsan-suppressions.txt. With rust-src
  # installed, dropping them and adding -Zbuild-std is the stronger run.
  TSAN_TARGET="$(rustup run nightly rustc -vV | sed -n 's/^host: //p')"
  RUSTFLAGS="-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer" \
    TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan-suppressions.txt" \
    CARGO_TARGET_DIR=target/tsan \
    cargo +nightly test -q -p et-serve --test server_integration \
    --target "$TSAN_TARGET"
  echo "==> ThreadSanitizer: et-serve event-loop transport suite"
  # Shards, acceptors, workers, and the completion mailboxes all cross
  # threads; the event-loop suite drives them under the race detector.
  RUSTFLAGS="-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer" \
    TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan-suppressions.txt" \
    CARGO_TARGET_DIR=target/tsan \
    cargo +nightly test -q -p et-serve --test event_loop \
    --target "$TSAN_TARGET"
  echo "==> ThreadSanitizer: et-fd parallel index/matrix builds + shared cache"
  RUSTFLAGS="-Zsanitizer=thread -Cunsafe-allow-abi-mismatch=sanitizer" \
    TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan-suppressions.txt" \
    CARGO_TARGET_DIR=target/tsan \
    cargo +nightly test -q -p et-fd --test parallel_build \
    --target "$TSAN_TARGET"
else
  echo "==> ThreadSanitizer: SKIPPED (nightly toolchain with -Zsanitizer=thread not available)"
fi

# Miri interprets the store/json unit tests for UB; -Zmiri-disable-isolation
# lets Instant::now() through. Needs the miri component on nightly.
if command -v rustup >/dev/null 2>&1 \
  && rustup run nightly cargo miri --version >/dev/null 2>&1; then
  echo "==> Miri: et-serve store/json unit tests"
  MIRIFLAGS="-Zmiri-disable-isolation" \
    cargo +nightly miri test -q -p et-serve --lib store:: json::
else
  echo "==> Miri: SKIPPED (miri component not installed on nightly)"
fi

echo "CI gate passed."
