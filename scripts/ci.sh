#!/usr/bin/env bash
# The full local CI gate, in fail-fast order: cheapest checks first.
#
#   ./scripts/ci.sh            # everything
#
# Mirrors what a hosted pipeline would run; each step is independently
# runnable (see README "Correctness tooling").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> et-lint (L1-L4 workspace rules)"
cargo run -q -p et-lint

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> et-serve bins + server integration test"
cargo build -q --release -p et-serve --bins
cargo test -q -p et-serve --test server_integration

echo "==> invariant-checks feature armed (facade + gated crates)"
cargo test -q --features invariant-checks
cargo test -q -p et-fd --features invariant-checks
cargo test -q -p et-belief --features invariant-checks
cargo test -q -p et-core --features invariant-checks

echo "CI gate passed."
